#include "emcgm/em_engine.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>

#include "cgm/proc_ctx.h"
#include "chaos/chaos_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdm/checksum.h"
#include "routing/balanced_routing.h"
#include "util/error.h"
#include "util/timer.h"

namespace emcgm::em {

namespace {

constexpr std::uint64_t kMaxRounds = 1u << 20;
constexpr std::uint32_t kNoHost = 0xFFFFFFFF;

// Commit-record framing (superstep checkpointing). Version 2 added the
// ownership map (group_host / alive) so a committed boundary records who was
// executing each store group when it was taken; version 3 added the
// membership epoch under which the boundary was committed.
constexpr std::uint32_t kCkptMagic = 0x454D4B50;  // "EMKP"
constexpr std::uint32_t kCkptVersion = 3;

// Internal control flow only (never escapes this translation unit): one or
// more real processors were found dead — by a fail-stop crash of their own
// disks, an exhausted network link, or the heartbeat detector. The superstep
// loop catches it and runs the fail-over procedure (or rethrows `cause` when
// fail-over cannot help).
struct DeadProcsError {
  std::vector<std::uint32_t> procs;
  std::exception_ptr cause;
};

bool is_crash(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const IoError& io) {
    return io.kind() == IoErrorKind::kCrash;
  } catch (...) {
    return false;
  }
}

// Serialized context layout: inputs (round 0 only), program state, outputs.
std::vector<std::byte> pack_context(
    const std::vector<std::vector<std::byte>>& inputs,
    const cgm::ProcState& state,
    const std::vector<std::vector<std::byte>>& outputs) {
  WriteArchive ar;
  ar.put<std::uint64_t>(inputs.size());
  for (const auto& in : inputs) ar.put_bytes(in);
  state.save(ar);
  // Outputs go last so that state.load() consumes exactly its own bytes.
  // (We cannot put them before the state: load() reads a fixed field
  // sequence, so anything preceding it must have a known structure.)
  WriteArchive tail;
  tail.put<std::uint64_t>(outputs.size());
  for (const auto& o : outputs) tail.put_bytes(o);
  ar.write_raw(tail.buffer().data(), tail.size());
  return ar.take();
}

struct UnpackedContext {
  std::vector<std::vector<std::byte>> inputs;
  std::vector<std::vector<std::byte>> outputs;
};

UnpackedContext unpack_context(std::span<const std::byte> blob,
                               cgm::ProcState& state) {
  ReadArchive ar(blob);
  UnpackedContext ctx;
  const auto n_in = ar.get<std::uint64_t>();
  ctx.inputs.reserve(static_cast<std::size_t>(n_in));
  for (std::uint64_t k = 0; k < n_in; ++k) ctx.inputs.push_back(ar.get_bytes());
  state.load(ar);
  const auto n_out = ar.get<std::uint64_t>();
  ctx.outputs.reserve(static_cast<std::size_t>(n_out));
  for (std::uint64_t k = 0; k < n_out; ++k) {
    ctx.outputs.push_back(ar.get_bytes());
  }
  EMCGM_CHECK_MSG(ar.exhausted(), "context blob has trailing bytes");
  return ctx;
}

}  // namespace

struct EmEngine::RealProc {
  std::unique_ptr<pdm::DiskArray> disks;
  pdm::TrackSpace space;
  std::unique_ptr<ContextStore> contexts;
  std::unique_ptr<MessageStore> messages;

  // Two alternating on-disk slots for superstep commit records, so a crash
  // while writing record k+1 leaves record k intact.
  struct CkptSlot {
    pdm::TrackRegion tracks;
    pdm::StripeCursor cursor;
    pdm::Extent extent{};

    CkptSlot(pdm::TrackSpace& space, std::uint32_t D)
        : tracks(space, 64), cursor(D) {}
  };
  std::optional<CkptSlot> ckpt[2];

  RealProc(const cgm::MachineConfig& cfg, std::uint32_t index,
           obs::Tracer* tracer) {
    std::string dir;
    if (cfg.backend == pdm::BackendKind::kFile) {
      // Multi-node layout: each real processor's disks under its own root
      // (separate filesystems); otherwise subdirectories of one file_dir.
      dir = cfg.file_roots.empty()
                ? cfg.file_dir + "/proc" + std::to_string(index)
                : cfg.file_roots[index];
    }
    pdm::DiskArrayOptions opts;
    opts.checksums = cfg.checksums;
    opts.retry = cfg.retry;
    opts.io_threads = cfg.io_threads;
    if (tracer) {
      opts.on_queue_depth = [tracer, index](std::size_t depth) {
        tracer->record_queue_depth(index, depth);
      };
    }
    const pdm::FaultPlan& plan = cfg.fault_per_proc.empty()
                                     ? cfg.fault
                                     : cfg.fault_per_proc[index];
    disks = pdm::make_disk_array(cfg.backend, cfg.disk, dir, opts, plan);
    // Capacity quota (chaos harness): applied at the innermost backend, so
    // a write that would grow any of this machine's disks past the quota
    // raises a typed IoError(kNoSpace).
    const std::uint64_t quota = cfg.chaos.disk_quota_per_proc.empty()
                                    ? cfg.chaos.disk_quota_bytes
                                    : cfg.chaos.disk_quota_per_proc[index];
    if (quota != 0) disks->set_quota_bytes(quota);
    ckpt[0].emplace(space, cfg.disk.num_disks);
    ckpt[1].emplace(space, cfg.disk.num_disks);
  }
};

// One store group's work during a computation superstep. A store group is
// indexed by the real processor that originally owned it; after a fail-over
// several groups can be driven by the same surviving host, but each group
// still reads and writes its own stores — which is why the outcome (and the
// final output) is independent of who executes it.
struct EmEngine::ProcOutcome {
  // outgoing physical messages grouped by owning store group
  std::vector<std::vector<cgm::Message>> by_owner;
  std::vector<char> done;  // per local vproc
  std::exception_ptr error;
};

// The cooperative run between start()/start_resume() and finish().
// Everything the old monolithic loop kept in locals lives here, so a
// scheduler can put the run down at any superstep barrier (by not calling
// step()) and pick it up arbitrarily later — between step() calls the
// engine is quiescent and this struct plus the committed boundary is the
// run's entire volatile state.
struct EmEngine::RunState {
  const cgm::Program* program = nullptr;
  Timer timer;  ///< whole-run wall clock (result.wall_s)
  cgm::RunResult result;

  std::uint64_t round = 0;
  Phase phase = Phase::kCompute;
  bool all_done = false;

  pdm::IoStats io_before;       ///< disk stats at start (delta -> result.io)
  net::NetStats net_before;     ///< wire stats at start (delta -> result.net)
  pdm::IoStats trace_mark;      ///< per-superstep I/O delta cursor
  net::NetStats net_step_mark;  ///< per-superstep wire delta cursor
  Timer step_timer;

  // No-progress watchdog (cfg.chaos.invariants): a high-water mark on the
  // (round, phase) key; see step().
  std::uint64_t wd_hw_round = 0;
  std::uint32_t wd_hw_phase = 0;
  bool wd_seen = false;
  std::uint32_t wd_stall = 0;
};

EmEngine::EmEngine(cgm::MachineConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  if (cfg_.single_copy_matrix) {
    EMCGM_CHECK_MSG(cfg_.layout == cgm::MsgLayout::kStaggeredMatrix,
                    "single_copy_matrix requires the staggered layout");
  }
  // Tracer first: RealProc disk arrays may carry a queue-depth probe into it.
  if (cfg_.obs.trace) {
    tracer_ = std::make_unique<obs::Tracer>(cfg_.p);
    if (!cfg_.obs.tenant.empty()) tracer_->set_tenant(cfg_.obs.tenant);
    metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  procs_.reserve(cfg_.p);
  for (std::uint32_t r = 0; r < cfg_.p; ++r) {
    procs_.push_back(std::make_unique<RealProc>(cfg_, r, tracer_.get()));
  }
  group_host_.resize(cfg_.p);
  std::iota(group_host_.begin(), group_host_.end(), 0u);
  alive_.assign(cfg_.p, 1);
}

EmEngine::~EmEngine() = default;

const pdm::IoStats& EmEngine::io_stats(std::uint32_t real_proc) const {
  EMCGM_CHECK(real_proc < cfg_.p);
  return procs_[real_proc]->disks->stats();
}

std::uint64_t EmEngine::tracks_used(std::uint32_t real_proc) const {
  EMCGM_CHECK(real_proc < cfg_.p);
  return procs_[real_proc]->disks->tracks_used();
}

pdm::DiskArray& EmEngine::disk_array(std::uint32_t real_proc) {
  EMCGM_CHECK(real_proc < cfg_.p);
  return *procs_[real_proc]->disks;
}

void EmEngine::set_disk_quota_bytes(std::uint32_t real_proc,
                                    std::uint64_t bytes) {
  EMCGM_CHECK(real_proc < cfg_.p);
  procs_[real_proc]->disks->set_quota_bytes(bytes);
}

void EmEngine::disarm_faults() {
  for (auto& rp : procs_) {
    if (auto* f = rp->disks->fault_injector()) f->disarm();
  }
}

std::uint32_t EmEngine::group_host(std::uint32_t g) const {
  EMCGM_CHECK(g < cfg_.p);
  return group_host_[g];
}

bool EmEngine::alive(std::uint32_t real_proc) const {
  EMCGM_CHECK(real_proc < cfg_.p);
  return alive_[real_proc] != 0;
}

std::uint64_t EmEngine::checkpoint_round() const {
  EMCGM_CHECK_MSG(commit_.valid, "no committed checkpoint");
  return commit_.round;
}

// -------------------------------------------------------------- commit ----

void EmEngine::commit(std::uint64_t round, Phase phase) {
  if (cfg_.chaos.invariants && commit_.valid) {
    // Commit boundaries must advance strictly: every commit follows a full
    // phase, so even a post-fail-over replay lands past the restored mark.
    const bool forward =
        round > commit_.round ||
        (round == commit_.round &&
         static_cast<std::uint32_t>(phase) >
             static_cast<std::uint32_t>(commit_.phase));
    if (!forward) {
      std::ostringstream os;
      os << "commit boundary (round " << round << ", phase "
         << static_cast<std::uint32_t>(phase)
         << ") does not advance past the committed (round " << commit_.round
         << ", phase " << static_cast<std::uint32_t>(commit_.phase) << ")";
      throw chaos::InvariantViolation(chaos::Invariant::kCommitMonotonic,
                                      os.str());
    }
  }
  const std::uint64_t seq = commit_.seq + 1;
  const int slot = static_cast<int>(seq % 2);
  // Record version on the wire: current (v3) unless a test pinned the
  // legacy v2 (pre-membership-epoch) framing to exercise the upgrade path.
  const std::uint32_t wv = cfg_.chaos.ckpt_write_version == 0
                               ? kCkptVersion
                               : cfg_.chaos.ckpt_write_version;
  // Every store group commits — including those of a dead machine, whose
  // disks survive it (remounted by the adopting survivor). A fail-stop crash
  // of one machine's disks must not abort the others' records: collect the
  // casualties and let the fail-over path deal with them. commit_ is only
  // advanced when every record landed, so a partial commit leaves the
  // previous boundary (in the other slot) authoritative.
  std::vector<std::uint32_t> crashed;
  std::exception_ptr cause;
  obs::Tracer* tr = tracer_.get();
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    auto& rp = *procs_[g];
    // Commit runs on the barrier thread; render the span on the group's
    // host so checkpoint cost shows up where the disks live.
    obs::SpanScope span(tr, tr ? &tr->engine_shard() : nullptr,
                        obs::SpanKind::kCommit, group_host_[g], g, g, -1,
                        phys_step_, round, &rp.disks->stats());
    try {
      WriteArchive ar;
      ar.put<std::uint32_t>(kCkptMagic);
      ar.put<std::uint32_t>(wv);
      ar.put<std::uint64_t>(seq);
      ar.put<std::uint64_t>(round);
      ar.put<std::uint32_t>(static_cast<std::uint32_t>(phase));
      if (wv >= 3) ar.put<std::uint64_t>(epoch_);  // v2 predates the epoch
      for (std::uint32_t g2 = 0; g2 < cfg_.p; ++g2) {
        ar.put<std::uint32_t>(group_host_[g2]);
      }
      for (std::uint32_t q = 0; q < cfg_.p; ++q) {
        ar.put<std::uint32_t>(alive_[q] ? 1 : 0);
      }
      rp.contexts->save(ar);
      rp.messages->save(ar);
      ar.put<std::uint32_t>(pdm::crc32c(ar.buffer()));
      auto blob = ar.take();
      span.set_aux(blob.size());

      auto& ck = *rp.ckpt[slot];
      ck.cursor.reset();
      ck.extent = ck.cursor.alloc(blob.size(), rp.disks->block_bytes());
      pdm::write_striped(*rp.disks, ck.tracks, ck.extent, blob);
      rp.disks->sync();  // a boundary is committed only once it is durable
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kCrash) throw;
      crashed.push_back(g);
      if (!cause) cause = std::current_exception();
    }
  }
  if (!crashed.empty()) {
    if (cfg_.net.failover) throw DeadProcsError{std::move(crashed), cause};
    std::rethrow_exception(cause);
  }
  commit_ = Commit{true, seq, round, phase};
}

void EmEngine::restore_from_commit() {
  EMCGM_CHECK_MSG(commit_.valid, "no committed checkpoint to resume from");
  // Quiesce every async executor before touching the disks: the aborted
  // superstep may have left write-behind errors pending, and they belong to
  // the timeline the replay is about to discard — they must not resurface
  // out of the restore's own reads.
  for (auto& rp : procs_) {
    try {
      rp->disks->drain();
    } catch (const IoError&) {
      // casualty of the aborted superstep
    }
  }
  const int slot = static_cast<int>(commit_.seq % 2);
  obs::Tracer* tr = tracer_.get();
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    auto& rp = procs_[g];
    obs::SpanScope span(tr, tr ? &tr->engine_shard() : nullptr,
                        obs::SpanKind::kRecovery, group_host_[g], g, g, -1,
                        phys_step_, commit_.round, &rp->disks->stats());
    EMCGM_CHECK_MSG(rp->contexts && rp->messages,
                    "resume() before run() set up the stores");
    auto& ck = *rp->ckpt[slot];
    std::vector<std::byte> blob(ck.extent.bytes);
    pdm::read_striped(*rp->disks, ck.tracks, ck.extent, blob);

    EMCGM_CHECK_MSG(blob.size() > 4, "commit record truncated");
    const auto body =
        std::span<const std::byte>(blob.data(), blob.size() - 4);
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
    if (stored_crc != pdm::crc32c(body)) {
      throw IoError(IoErrorKind::kCorruption,
                    "commit record checksum mismatch");
    }
    ReadArchive ar(body);
    const auto magic = ar.get<std::uint32_t>();
    const auto version = ar.get<std::uint32_t>();
    if (magic != kCkptMagic || (version != 2 && version != kCkptVersion)) {
      throw IoError(IoErrorKind::kCorruption,
                    "commit record has bad magic/version");
    }
    const auto seq = ar.get<std::uint64_t>();
    const auto round = ar.get<std::uint64_t>();
    const auto phase = ar.get<std::uint32_t>();
    EMCGM_CHECK_MSG(seq == commit_.seq && round == commit_.round &&
                        phase == static_cast<std::uint32_t>(commit_.phase),
                    "commit record does not match the in-memory commit mark");
    // Membership epoch (v3): the epoch under which the boundary was taken.
    // A fail-over bumps the epoch *before* restoring the record committed
    // under the old epoch, so the recorded value is a floor, not an
    // equality. A v2 (pre-epoch) record upgrades as epoch 0 — whose
    // fault-coin streams are exactly the pre-epoch streams, so a resumed v2
    // run stays bit-identical.
    const auto rec_epoch = version >= 3 ? ar.get<std::uint64_t>() : 0;
    EMCGM_CHECK_MSG(rec_epoch <= epoch_,
                    "commit record from a future membership epoch");
    // Ownership map (v2): who hosted each store group at this boundary. The
    // in-memory map is authoritative — a fail-over re-assigns hosts *before*
    // restoring, and the restore must not undo that — so the recorded map is
    // only validated, not applied.
    for (std::uint32_t g = 0; g < cfg_.p; ++g) {
      const auto host = ar.get<std::uint32_t>();
      EMCGM_CHECK_MSG(host < cfg_.p, "commit record names a bad group host");
    }
    for (std::uint32_t q = 0; q < cfg_.p; ++q) {
      const auto a = ar.get<std::uint32_t>();
      EMCGM_CHECK_MSG(a <= 1, "commit record has a bad liveness flag");
    }
    rp->contexts->load(ar);
    rp->messages->load(ar);
    EMCGM_CHECK_MSG(ar.exhausted(), "commit record has trailing bytes");
  }
}

// ---------------------------------------------------------- membership ----

void EmEngine::bump_epoch() {
  ++epoch_;
  if (net_) net_->set_epoch(epoch_);
  if (tracer_) tracer_->record_membership_epoch(epoch_);
  rebuild_schedule();
}

void EmEngine::rebuild_schedule() {
  if (!net_ || cfg_.net.schedule == routing::ScheduleKind::kDirect) {
    sched_.reset();
    return;
  }
  std::vector<std::uint32_t> hosts;
  for (std::uint32_t q = 0; q < cfg_.p; ++q) {
    if (alive_[q]) hosts.push_back(q);
  }
  if (cfg_.net.schedule == routing::ScheduleKind::kCustom) {
    // User-supplied schedule JSON. At run start (epoch 0, full membership)
    // it must cover exactly this machine — anything else is a typed
    // configuration error before a byte moves. A later membership epoch
    // cannot re-derive a hand-written host set, so the run falls back to
    // the direct path for its remaining epochs (documented policy,
    // NetConfig::custom_schedule_json): the schedule shape only changes the
    // wire layout, never the delivered bytes, so the fall-back preserves
    // bit-identical output. The JSON's own "kind" label is free — a ring
    // exported by tools/schedule_check replays fine as kCustom.
    routing::CommSchedule s =
        routing::parse_schedule_json(cfg_.net.custom_schedule_json);
    if (s.p != cfg_.p || s.hosts != hosts) {
      if (epoch_ == 0) {
        std::ostringstream os;
        os << "custom schedule covers p=" << s.p << " with "
           << s.hosts.size() << " hosts but the machine has p=" << cfg_.p
           << " with " << hosts.size() << " live hosts at run start";
        throw IoError(IoErrorKind::kConfig, os.str());
      }
      sched_.reset();  // membership changed: fall back to direct
      return;
    }
    routing::verify_schedule(s);
    sched_ = std::move(s);
    return;
  }
  sched_ = routing::make_schedule(
      cfg_.net.schedule, cfg_.p, hosts,
      routing::machines_from_roots(cfg_.p, cfg_.file_roots));
  // Safety net: every derived schedule must pass the model checker before
  // the engine routes a byte through it. Throws typed IoError(kConfig).
  routing::verify_schedule(*sched_);
}

std::vector<std::uint32_t> EmEngine::rebalance_groups() const {
  // Home placement first: a group whose original owner is alive stays (or
  // returns) home — its disks live there, so the placement is free — and
  // seeds that host's load. Orphans are then spread greedily, group id
  // ascending, onto the least-loaded live host (ties to the lowest id).
  // The result is a pure function of the alive set: every replica of the
  // run — whatever its threading mode — rebalances identically, the
  // max-min load difference is at most 1, and only groups that *must*
  // move (or can go home) ever change host.
  std::vector<std::uint32_t> host(cfg_.p, kNoHost);
  std::vector<std::uint32_t> load(cfg_.p, 0);
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    if (!alive_[g]) continue;
    host[g] = g;
    ++load[g];
  }
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    if (host[g] != kNoHost) continue;
    std::uint32_t best = kNoHost;
    for (std::uint32_t h = 0; h < cfg_.p; ++h) {
      if (!alive_[h]) continue;
      if (best == kNoHost || load[h] < load[best]) best = h;
    }
    EMCGM_ASSERT(best != kNoHost);
    host[g] = best;
    ++load[best];
  }
  return host;
}

void EmEngine::verify_spread() const {
  if (!cfg_.chaos.invariants) return;
  std::vector<std::uint32_t> load(cfg_.p, 0);
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    const std::uint32_t h = group_host_[g];
    if (h >= cfg_.p || !alive_[h]) {
      throw chaos::InvariantViolation(
          chaos::Invariant::kSpread,
          "store group " + std::to_string(g) + " assigned to dead host " +
              std::to_string(h));
    }
    ++load[h];
  }
  std::uint32_t lo = 0xFFFFFFFF, hi = 0;
  for (std::uint32_t h = 0; h < cfg_.p; ++h) {
    if (!alive_[h]) continue;
    lo = std::min(lo, load[h]);
    hi = std::max(hi, load[h]);
  }
  if (hi > lo + 1) {
    std::ostringstream os;
    os << "store-group spread over live hosts is " << (hi - lo)
       << " (min load " << lo << ", max load " << hi << "); rebalance must"
       << " keep it <= 1";
    throw chaos::InvariantViolation(chaos::Invariant::kSpread, os.str());
  }
}

void EmEngine::verify_drained(const char* where) const {
  if (!cfg_.chaos.invariants) return;
  for (std::uint32_t r = 0; r < cfg_.p; ++r) {
    const std::uint64_t pending = procs_[r]->disks->in_flight();
    if (pending != 0) {
      std::ostringstream os;
      os << "real processor " << r << " has " << pending
         << " write-behind blocks in flight at " << where
         << "; deferred I/O must never cross a superstep barrier";
      throw chaos::InvariantViolation(chaos::Invariant::kExecutorDrain,
                                      os.str());
    }
  }
}

std::vector<std::byte> EmEngine::read_commit_blob(std::uint32_t g) {
  auto& rp = *procs_[g];
  auto& ck = *rp.ckpt[static_cast<int>(commit_.seq % 2)];
  std::vector<std::byte> blob(ck.extent.bytes);
  pdm::read_striped(*rp.disks, ck.tracks, ck.extent, blob);
  return blob;
}

void EmEngine::validate_commit_record(std::uint32_t g,
                                      std::span<const std::byte> blob) const {
  // Checkpoint catch-up on the receiving side of a hand-over: the stores
  // themselves are not loaded from the migrated copy — the group's own
  // disks are authoritative and the new host reads them directly — but a
  // host handing over a stale or torn record must be caught here, not a
  // superstep later.
  EMCGM_CHECK_MSG(blob.size() > 4, "migrated commit record truncated");
  const auto body = std::span<const std::byte>(blob.data(), blob.size() - 4);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
  if (stored_crc != pdm::crc32c(body)) {
    throw IoError(IoErrorKind::kCorruption,
                  "migrated commit record checksum mismatch");
  }
  ReadArchive ar(body);
  const auto magic = ar.get<std::uint32_t>();
  const auto version = ar.get<std::uint32_t>();
  if (magic != kCkptMagic || (version != 2 && version != kCkptVersion)) {
    throw IoError(IoErrorKind::kCorruption,
                  "migrated commit record has bad magic/version");
  }
  const auto seq = ar.get<std::uint64_t>();
  EMCGM_CHECK_MSG(seq == commit_.seq,
                  "group " << g << " migrated a stale commit record (seq "
                           << seq << ", committed " << commit_.seq << ")");
}

std::uint64_t EmEngine::migrate_groups(
    const std::vector<std::uint32_t>& old_host, std::uint64_t round) {
  // The group's state lives on its own disks — the new host simply remounts
  // them — so a hand-over moves no context or message bytes. What crosses
  // the wire is the catch-up: a live old host streams the group's committed
  // record to the new host through the staged mailbox path, and the new
  // host validates it against the in-memory commit mark before taking the
  // group. A dead old host cannot stream anything; its groups are adopted
  // straight off their surviving disks (no wire traffic, counted as
  // migrations all the same). Groups are handed over in ascending order at
  // the barrier, so the round's wire activity is canonical in every
  // threading mode.
  std::vector<std::uint32_t> moved;
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    if (old_host[g] != group_host_[g]) moved.push_back(g);
  }
  if (moved.empty()) return 0;
  obs::Tracer* tr = tracer_.get();
  obs::SpanScope span(tr, tr ? &tr->engine_shard() : nullptr,
                      obs::SpanKind::kRebalance, tr ? tr->engine_pid() : 0, 0,
                      -1, -1, phys_step_, round);
  std::uint64_t wire_bytes = 0;
  net_->begin_round();
  for (std::uint32_t g : moved) {
    const std::uint32_t from = old_host[g];
    std::uint64_t record_bytes = 0;
    if (alive_[from]) {
      auto blob = read_commit_blob(g);
      record_bytes = blob.size();
      WriteArchive ar;
      ar.put<std::uint32_t>(g);
      ar.put_bytes(blob);
      net_->post(from, group_host_[g], ar.take());
    }
    net_->count_migration(record_bytes);
    wire_bytes += record_bytes;
  }
  for (std::uint32_t h = 0; h < cfg_.p; ++h) {
    if (alive_[h]) net_->finish_sender(h);
  }
  // A cascading loss during the hand-over round itself is unrecoverable
  // from here (this may already be the fail-over path); let it surface.
  auto inboxes = net_->collect();
  for (std::uint32_t h = 0; h < cfg_.p; ++h) {
    std::vector<std::vector<std::byte>> stream_from(cfg_.p);
    for (auto& d : inboxes[h]) {
      auto& s = stream_from[d.src];
      s.insert(s.end(), d.payload.begin(), d.payload.end());
    }
    for (std::uint32_t hs = 0; hs < cfg_.p; ++hs) {
      if (stream_from[hs].empty()) continue;
      ReadArchive ar(stream_from[hs]);
      while (!ar.exhausted()) {
        const auto g = ar.get<std::uint32_t>();
        EMCGM_CHECK_MSG(g < cfg_.p && group_host_[g] == h,
                        "migrated commit record misrouted");
        const auto blob = ar.get_bytes();
        validate_commit_record(g, blob);
      }
    }
  }
  span.set_aux(moved.size(), wire_bytes);
  return wire_bytes;
}

std::uint64_t EmEngine::try_rejoin(std::uint64_t round,
                                   cgm::RunResult& result) {
  if (!cfg_.net.rejoin || !net_ || !commit_.valid) return 0;
  const auto candidates = net_->rejoin_round(phys_step_, epoch_, commit_.seq);
  if (candidates.empty()) return 0;
  obs::Tracer* tr = tracer_.get();
  obs::SpanScope span(tr, tr ? &tr->engine_shard() : nullptr,
                      obs::SpanKind::kRejoin, tr ? tr->engine_pid() : 0, 0,
                      -1, -1, phys_step_, round);
  // Re-admission runs at the barrier, before the superstep opens. The
  // returner's disks hold exactly the committed state (the layout never
  // moved while it was gone), the acks told it the committed superstep id,
  // and the catch-up — the committed record of every group it takes back,
  // streamed by the current host and validated on arrival — happens in the
  // hand-over round. Nothing else needs restoring: at a barrier the live
  // stores *are* the committed state.
  for (std::uint32_t q : candidates) {
    alive_[q] = 1;
    net_->mark_alive(q);
  }
  bump_epoch();
  const std::vector<std::uint32_t> old_host = group_host_;
  group_host_ = rebalance_groups();
  verify_spread();
  net_->reset_links();
  const std::uint64_t record_bytes = migrate_groups(old_host, round);
  result.rejoins += candidates.size();
  span.set_aux(candidates.size(), record_bytes);
  return candidates.size();
}

// ------------------------------------------------------------ fail-over ---

void EmEngine::failover(const std::vector<std::uint32_t>& dead_procs,
                        std::exception_ptr cause, cgm::RunResult& result) {
  auto unrecoverable = [&](const char* why) {
    if (cause) std::rethrow_exception(cause);
    throw Error(std::string("fail-over impossible: ") + why);
  };
  if (!cfg_.net.failover || !net_) unrecoverable("fail-over is disabled");
  if (!commit_.valid) {
    unrecoverable("a real processor died before the first committed boundary");
  }

  bool any_new = false;
  for (std::uint32_t q : dead_procs) {
    EMCGM_CHECK(q < cfg_.p);
    if (!alive_[q]) continue;
    any_new = true;
    alive_[q] = 0;
    net_->mark_dead(q);
    // The machine is gone but its disks survive; the adopting survivor
    // remounts them, which ends the dead machine's injected fault schedule.
    if (auto* f = procs_[q]->disks->fault_injector()) f->disarm();
  }
  if (!any_new) unrecoverable("declared-dead processors were already dead");

  std::uint32_t live = 0;
  for (char a : alive_) live += a ? 1 : 0;
  if (live == 0) {
    // Total wipe-out: every real processor died in the same superstep, so
    // there is no survivor to degrade onto — the run aborts typed. But a
    // committed boundary exists (checked above) and commit records always
    // live on each group's *original* disks, so the machine is left in the
    // same shape a fresh run would find: everybody nominally alive, groups
    // home, links reset. A caller that repairs the fault (disarm_faults /
    // quota bump) can then resume() from the intact checkpoint to
    // bit-identical output; one whose fault plan re-kills the replay gets
    // the same typed failure again. Identical under every collective
    // schedule: rebuild_schedule() (via bump_epoch) re-derives over the
    // full host set.
    for (std::uint32_t q = 0; q < cfg_.p; ++q) {
      alive_[q] = 1;
      net_->mark_alive(q);
    }
    std::iota(group_host_.begin(), group_host_.end(), 0u);
    bump_epoch();
    net_->reset_links();
    unrecoverable("no surviving real processor");
  }

  // Membership changed: new epoch (fresh, independent fault-coin streams on
  // every link) and a full deterministic re-spread of the store groups over
  // the survivors — two runs with the same fault schedule degrade
  // identically, and the groups-per-live-host spread stays within 1.
  bump_epoch();
  const std::vector<std::uint32_t> old_host = group_host_;
  group_host_ = rebalance_groups();
  verify_spread();

  // Leftovers of the aborted superstep must not reach the replay.
  net_->reset_links();

  result.failovers += 1;
  restore_from_commit();
  // Hand over the groups that changed host. The dead machines' groups are
  // adopted off their surviving disks; a group moving between two live
  // survivors (the greedy spread can shift an orphan when the host set
  // shrinks) gets its committed record streamed and re-validated.
  migrate_groups(old_host, commit_.round);
}

// ----------------------------------------------------------------- run ----

std::vector<cgm::PartitionSet> EmEngine::run(
    const cgm::Program& program, std::vector<cgm::PartitionSet> inputs) {
  start(program, std::move(inputs));
  while (step()) {
  }
  return finish();
}

void EmEngine::set_io_charge_hook(pdm::IoChargeFn fn) {
  io_charge_ = std::move(fn);
  // Disk arrays persist across runs, so installing on them once covers
  // every current and future run of this engine.
  for (auto& rp : procs_) rp->disks->set_charge_hook(io_charge_);
}

void EmEngine::set_net_charge_hook(net::NetChargeFn fn) {
  net_charge_ = std::move(fn);
  if (net_) net_->set_charge_hook(net_charge_);
}

void EmEngine::set_net_job_tag(std::uint64_t tag) {
  net_job_tag_ = tag;
  if (net_) net_->set_job_tag(tag);
}

/// RAII re-entrancy check on the cooperative API: one EmEngine is
/// single-driver (see the thread-safety note in em_engine.h); concurrent
/// entry into the same engine fails loudly here instead of racing.
class EmEngine::ApiGuard {
 public:
  ApiGuard(std::atomic<bool>& busy, const char* what) : busy_(busy) {
    EMCGM_CHECK_MSG(
        !busy_.exchange(true, std::memory_order_acquire),
        what << "() entered while another cooperative-API call is running on"
                " this engine — one engine is single-driver; step distinct"
                " engines from distinct threads instead");
  }
  ~ApiGuard() { busy_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& busy_;
};

void EmEngine::start(const cgm::Program& program,
                     std::vector<cgm::PartitionSet> inputs) {
  ApiGuard guard(busy_, "start");
  rs_.reset();  // discard any previous unfinished cooperative run
  const std::uint32_t v = cfg_.v;
  const std::uint32_t p = cfg_.p;
  const std::uint32_t nloc = nlocal();

  commit_ = Commit{};
  running_program_ = program.name();

  // Fresh membership per run: every machine alive, every store group hosted
  // by its original owner, the physical superstep clock and the membership
  // epoch at zero.
  std::iota(group_host_.begin(), group_host_.end(), 0u);
  alive_.assign(p, 1);
  phys_step_ = 0;
  epoch_ = 0;
  net_.reset();
  if (cfg_.net.enabled && p > 1) {
    net_ = std::make_unique<net::SimNetwork>(p, cfg_.net);
    net_->set_machine_map(routing::machines_from_roots(p, cfg_.file_roots));
    if (tracer_) net_->set_tracer(tracer_.get());
    if (tracer_) tracer_->record_membership_epoch(0);
    net_->set_job_tag(net_job_tag_);
    if (net_charge_) net_->set_charge_hook(net_charge_);
  }
  rebuild_schedule();

  pdm::IoStats io_before;
  for (auto& rp : procs_) io_before += rp->disks->stats();

  // ------------------------------------------------------------- set-up --
  for (const auto& slot : inputs) {
    EMCGM_CHECK_MSG(slot.parts.size() == v,
                    "input PartitionSet must have v parts");
  }
  std::uint64_t total_input_bytes = 0;
  for (const auto& slot : inputs) {
    for (const auto& part : slot.parts) total_input_bytes += part.size();
  }

  // Staggered-slot capacity: explicit hint, or the Lemma 2 bound
  // 2 * ceil(N / v^2) plus fragment-header slack for balanced routing.
  std::size_t slot_bytes = cfg_.staggered_slot_bytes;
  if (cfg_.layout == cgm::MsgLayout::kStaggeredMatrix && slot_bytes == 0) {
    EMCGM_CHECK_MSG(cfg_.balanced_routing,
                    "staggered layout without balanced routing has no"
                    " message-size bound; set staggered_slot_bytes or use"
                    " the chained layout");
    const std::uint64_t B = cfg_.disk.block_bytes;
    const std::uint64_t lemma2_floor =
        static_cast<std::uint64_t>(v) * v * B +
        static_cast<std::uint64_t>(v) * v * (v - 1) / 2;
    EMCGM_CHECK_MSG(total_input_bytes >= lemma2_floor,
                    "Lemma 2 precondition N >= v^2*B + v^2(v-1)/2 violated"
                    " (N=" << total_input_bytes << " bytes, floor="
                           << lemma2_floor
                           << "); use the chained layout or set"
                              " staggered_slot_bytes explicitly");
    // Lemma 2 bounds a balanced message by 2 * ceil(h/v) where h is the
    // per-processor communication volume; algorithms commonly attach
    // routing tags that double the input volume (e.g. the sort's tie-break
    // ids), so the derived default allows a 2x expansion plus the
    // fragment-header slack. Programs with larger expansion must set
    // staggered_slot_bytes explicitly.
    slot_bytes = static_cast<std::size_t>(
        4 * ceil_div(total_input_bytes, std::uint64_t{v} * v) + 64ULL * v +
        128);
  }

  // Fresh stores per run; the disk arrays (and their statistics) persist.
  for (std::uint32_t r = 0; r < p; ++r) {
    auto& rp = *procs_[r];
    rp.contexts = std::make_unique<ContextStore>(*rp.disks, rp.space, nloc);
    MessageStoreConfig mcfg;
    mcfg.v = v;
    mcfg.local_base = r * nloc;
    mcfg.nlocal = nloc;
    mcfg.slot_bytes = slot_bytes;
    mcfg.single_copy = cfg_.single_copy_matrix;
    rp.messages =
        make_message_store(cfg_.layout, *rp.disks, rp.space, mcfg);
  }

  // Write initial contexts: the input partitions plus a fresh program state.
  {
    const auto fresh = program.make_state();
    WriteArchive probe;
    fresh->save(probe);  // ensure save() works on a default state up front
  }
  {
    obs::Tracer* tr = tracer_.get();
    obs::SpanScope setup_span(tr, tr ? &tr->engine_shard() : nullptr,
                              obs::SpanKind::kContextWrite, tr ? tr->p() : 0,
                              0, -1, -1, phys_step_, 0);
    for (std::uint32_t g = 0; g < v; ++g) {
      std::vector<std::vector<std::byte>> mine;
      mine.reserve(inputs.size());
      for (auto& slot : inputs) mine.push_back(std::move(slot.parts[g]));
      const auto state = program.make_state();
      const auto blob = pack_context(mine, *state, {});
      procs_[owner_of(g)]->contexts->write(g % nloc, blob);
    }
    for (auto& rp : procs_) rp->contexts->flip();
  }

  // Superstep 0 is now recoverable: the inputs live on disk. A machine that
  // dies this early took uncommitted inputs with it — nothing to fail over
  // to, so surface the underlying fault.
  if (cfg_.checkpointing) {
    try {
      commit(0, Phase::kCompute);
    } catch (const DeadProcsError& e) {
      if (e.cause) std::rethrow_exception(e.cause);
      throw Error("real processor died during the initial commit");
    }
  }

  begin_loop(program, 0, Phase::kCompute, io_before);
}

std::vector<cgm::PartitionSet> EmEngine::resume(const cgm::Program& program) {
  start_resume(program);
  while (step()) {
  }
  return finish();
}

void EmEngine::start_resume(const cgm::Program& program) {
  ApiGuard guard(busy_, "start_resume");
  rs_.reset();
  EMCGM_CHECK_MSG(cfg_.checkpointing,
                  "resume() requires cfg.checkpointing = true");
  EMCGM_CHECK_MSG(program.name() == running_program_,
                  "resume() must be called with the program passed to run()"
                  " (got '" << program.name() << "', ran '"
                            << running_program_ << "')");
  restore_from_commit();

  pdm::IoStats io_before;
  for (auto& rp : procs_) io_before += rp->disks->stats();
  begin_loop(program, commit_.round, commit_.phase, io_before);
}

void EmEngine::begin_loop(const cgm::Program& program,
                          std::uint64_t start_round, Phase start_phase,
                          const pdm::IoStats& io_before) {
  rs_ = std::make_unique<RunState>();
  rs_->program = &program;
  rs_->round = start_round;
  rs_->phase = start_phase;
  rs_->all_done = (start_phase == Phase::kDone);
  rs_->io_before = io_before;
  // The first superstep's recorded I/O delta deliberately includes any
  // setup I/O between io_before and here (initial context writes, initial
  // commit) — unchanged from the monolithic loop.
  rs_->trace_mark = io_before;
  rs_->net_before = net_ ? net_->stats() : net::NetStats{};
  rs_->net_step_mark = rs_->net_before;
}

// ----------------------------------------------------------- superstep ----

void EmEngine::record_step_io(RunState& rs, const char* phase_label,
                              bool has_comm, std::uint64_t step_round) {
  // Per-superstep I/O trace: delta of the summed disk statistics. With
  // observability on, the same barrier also snapshots one MetricsRegistry
  // row — IoStats/StepComm/NetStats deltas plus the cost model's predicted
  // I/O seconds for the counted ops, against the measured step wall clock.
  pdm::IoStats now;
  for (auto& rp : procs_) now += rp->disks->stats();
  const pdm::IoStats delta = now - rs.trace_mark;
  rs.result.io_per_step.push_back(delta);
  rs.trace_mark = now;
  if (metrics_) {
    obs::SuperstepMetrics m;
    m.step = phys_step_;
    m.round = step_round;
    m.phase = phase_label;
    m.io = delta;
    if (has_comm && !rs.result.comm.steps.empty()) {
      m.has_comm = true;
      m.comm = rs.result.comm.steps.back();
    }
    if (net_) {
      const net::NetStats net_now = net_->stats();
      m.net = net_now - rs.net_step_mark;
      rs.net_step_mark = net_now;
    }
    m.wall_s = rs.step_timer.elapsed_s();
    m.model_io_s = pdm::DiskCostModel{}.io_seconds(delta,
                                                   cfg_.disk.block_bytes);
    m.end_ns = tracer_->now_ns();
    metrics_->record(std::move(m));
  }
  rs.step_timer.reset();
}

void EmEngine::simulate_real_proc(RunState& rs, std::uint32_t r,
                                  ProcOutcome& out) {
  const cgm::Program& program = *rs.program;
  const std::uint32_t v = cfg_.v;
  const std::uint32_t p = cfg_.p;
  const std::uint32_t nloc = nlocal();
  const bool balanced = cfg_.balanced_routing;
  obs::Tracer* const tr = tracer_.get();
  try {
    auto& rp = *procs_[r];
    // Span shard discipline: group r's spans go into the shard of the
    // *host driving it* — exactly one thread per host — while the span's
    // rendering coordinates stay with the group's disks.
    const std::uint32_t host = group_host_[r];
    obs::TraceShard* shard = tr ? &tr->host_shard(host) : nullptr;
    const pdm::IoStats* io_src = tr ? &rp.disks->stats() : nullptr;
    obs::SpanScope group_span(tr, shard, obs::SpanKind::kGroupStep, host, r,
                              r, -1, phys_step_, rs.round, io_src);
    out.by_owner.assign(p, {});
    out.done.assign(nloc, 0);
    // Prefetch window cursor: first local vproc whose context/inbox reads
    // have not been issued yet. Depth 1 (the default) reproduces the
    // pre-knob one-ahead pipeline exactly — same issue order, same spans.
    const std::uint32_t depth = cfg_.prefetch_depth;
    std::uint32_t pf = 1;
    for (std::uint32_t jl = 0; jl < nloc; ++jl) {
      const std::uint32_t g = r * nloc + jl;
      // (a) context in.
      auto state = program.make_state();
      UnpackedContext unpacked;
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kContextRead, host, r,
                            r, g, phys_step_, rs.round, io_src);
        const auto blob = rp.contexts->read(jl);
        unpacked = unpack_context(blob, *state);
      }
      // (b) messages in.
      std::vector<cgm::Message> inbox;
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kInboxRead, host, r,
                            r, g, phys_step_, rs.round, io_src);
        inbox = rp.messages->read_incoming(g);
        if (balanced && rs.round > 0) {
          inbox = routing::decode_phase_b(v, g, inbox);
        }
      }
      const std::size_t inbox_msgs = inbox.size();
      // Overlap: submit the *next* virtual processor's context and inbox
      // reads now, so the executor services them while this one computes.
      // Safe against this superstep's in-flight writes — context writes
      // target the inactive region, and in Observation-2 single-copy mode
      // vproc j's outgoing slots reuse exactly the band-j blocks its own
      // inbox freed, never band j+1 (per-disk FIFO covers any same-disk
      // pair regardless). Serial arrays skip this: the prefetch would
      // just execute the reads early, changing nothing but span shapes.
      // A window of prefetch_depth vprocs is kept in flight; when the model
      // grants finite memory the window additionally stops once its context
      // bytes would exceed M/2, leaving the computing vproc its own
      // residency (cgm::MachineConfig::prefetch_depth). The cursor `pf`
      // guarantees each vproc's reads are issued exactly once per superstep
      // whatever the window shape.
      if (rp.disks->async() && jl + 1 < nloc) {
        std::uint32_t hi = std::min<std::uint32_t>(nloc - 1, jl + depth);
        if (cfg_.memory_bytes > 0 && depth > 1) {
          std::uint64_t budget = cfg_.memory_bytes / 2;
          std::uint32_t lim = jl + 1;  // one ahead is always allowed
          for (std::uint32_t k = jl + 1; k <= hi; ++k) {
            const std::uint64_t cb = rp.contexts->context_bytes(k);
            if (k > jl + 1 && cb > budget) break;
            budget -= std::min(budget, cb);
            lim = k;
          }
          hi = lim;
        }
        if (pf < jl + 1) pf = jl + 1;
        if (pf <= hi) {
          obs::SpanScope span(tr, shard, obs::SpanKind::kIoPrefetch, host, r,
                              r, g + 1, phys_step_, rs.round, io_src);
          for (; pf <= hi; ++pf) {
            rp.contexts->prefetch(pf);
            rp.messages->prefetch_incoming(r * nloc + pf);
          }
        }
      }
      // (c) compute.
      cgm::ProcCtx pctx(g, v, cfg_.seed);
      std::vector<cgm::Message> physical;
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kCompute, host, r, r,
                            g, phys_step_, rs.round);
        pctx.set_inputs(std::move(unpacked.inputs));
        pctx.outputs() = std::move(unpacked.outputs);
        pctx.begin_superstep(rs.round, std::move(inbox));
        program.round(pctx, *state);
        out.done[jl] = program.done(pctx, *state) ? 1 : 0;
        auto outbox = pctx.take_outbox();
        if (out.done[jl]) {
          EMCGM_CHECK_MSG(outbox.empty(),
                          "program '"
                              << program.name()
                              << "' sent messages in its final round");
        }
        span.set_aux(inbox_msgs, outbox.size());
        physical = balanced ? routing::encode_phase_a(v, g, outbox)
                            : std::move(outbox);
      }
      // (d) messages out. Locally addressed messages are written
      // immediately when p == 1 (Algorithm 2 order, which is what the
      // Observation-2 freed-slot reuse relies on); with p > 1 everything
      // is delivered at superstep end (Algorithm 3: "upon arrival").
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kOutboxWrite, host, r,
                            r, g, phys_step_, rs.round, io_src);
        if (tr) {
          std::uint64_t bytes = 0;
          for (const auto& m : physical) bytes += m.payload.size();
          span.set_aux(physical.size(), bytes);
        }
        if (p == 1) {
          rp.messages->write_messages(physical);
        } else {
          for (auto& m : physical) {
            out.by_owner[owner_of(m.dst)].push_back(std::move(m));
          }
        }
      }
      // (e) context out (inputs are consumed by round 0).
      obs::SpanScope span(tr, shard, obs::SpanKind::kContextWrite, host, r,
                          r, g, phys_step_, rs.round, io_src);
      const auto new_blob = pack_context({}, *state, pctx.outputs());
      if (cfg_.memory_bytes > 0) {
        const std::size_t resident = new_blob.size() + pctx.resident_bytes();
        EMCGM_CHECK_MSG(resident <= cfg_.memory_bytes,
                        "virtual processor " << g << " needs " << resident
                                             << " bytes but M = "
                                             << cfg_.memory_bytes);
      }
      rp.contexts->write(jl, new_blob);
    }
    if (rp.disks->async()) {
      // Write-behind completion barrier, inside the try: a crash or fault
      // that fired on a deferred write surfaces here and is collected
      // exactly like a synchronous one, and the superstep's IoStats are
      // fully reaped before the barrier records them.
      obs::SpanScope span(tr, shard, obs::SpanKind::kIoDrain, host, r, r,
                          -1, phys_step_, rs.round, io_src);
      rp.disks->drain();
    }
  } catch (...) {
    out.error = std::current_exception();
  }
}

// Engine-side regrouping superstep of balanced routing (Lemma 2); touches
// only the message store — contexts are not read or written.
void EmEngine::regroup_real_proc(RunState& rs, std::uint32_t r,
                                 ProcOutcome& out) {
  const std::uint32_t v = cfg_.v;
  const std::uint32_t p = cfg_.p;
  const std::uint32_t nloc = nlocal();
  obs::Tracer* const tr = tracer_.get();
  try {
    auto& rp = *procs_[r];
    const std::uint32_t host = group_host_[r];
    obs::TraceShard* shard = tr ? &tr->host_shard(host) : nullptr;
    const pdm::IoStats* io_src = tr ? &rp.disks->stats() : nullptr;
    obs::SpanScope group_span(tr, shard, obs::SpanKind::kGroupStep, host, r,
                              r, -1, phys_step_, rs.round, io_src);
    out.by_owner.assign(p, {});
    const std::uint32_t depth = cfg_.prefetch_depth;
    std::uint32_t pf = 1;
    for (std::uint32_t jl = 0; jl < nloc; ++jl) {
      const std::uint32_t g = r * nloc + jl;
      std::vector<cgm::Message> inbox;
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kInboxRead, host, r,
                            r, g, phys_step_, rs.round, io_src);
        inbox = rp.messages->read_incoming(g);
      }
      // Overlap the next inbox fetches with this regrouping pass (same
      // safety argument and pf-cursor window as in the compute phase;
      // regrouping touches no contexts, so only the message store is
      // prefetched and the M/2 context bound does not apply).
      if (rp.disks->async() && jl + 1 < nloc) {
        const std::uint32_t hi =
            std::min<std::uint32_t>(nloc - 1, jl + depth);
        if (pf < jl + 1) pf = jl + 1;
        if (pf <= hi) {
          obs::SpanScope span(tr, shard, obs::SpanKind::kIoPrefetch, host, r,
                              r, g + 1, phys_step_, rs.round, io_src);
          for (; pf <= hi; ++pf) {
            rp.messages->prefetch_incoming(r * nloc + pf);
          }
        }
      }
      obs::SpanScope span(tr, shard, obs::SpanKind::kOutboxWrite, host, r,
                          r, g, phys_step_, rs.round, io_src);
      auto physical = routing::transform_intermediate(v, g, inbox);
      if (tr) {
        std::uint64_t bytes = 0;
        for (const auto& m : physical) bytes += m.payload.size();
        span.set_aux(physical.size(), bytes);
      }
      if (p == 1) {
        rp.messages->write_messages(physical);
      } else {
        for (auto& m : physical) {
          out.by_owner[owner_of(m.dst)].push_back(std::move(m));
        }
      }
    }
    if (rp.disks->async()) {
      obs::SpanScope span(tr, shard, obs::SpanKind::kIoDrain, host, r, r,
                          -1, phys_step_, rs.round, io_src);
      rp.disks->drain();
    }
  } catch (...) {
    out.error = std::current_exception();
  }
}

// Post one finished store group's crossing batches into the network's
// per-link mailboxes (p > 1, net enabled; called from the host's own
// worker thread). Records are serialized in (src_g, dst_g) order — each
// host drives its groups ascending and this loop scans dst_g ascending,
// so every link's mailbox stream is canonical whatever the thread
// interleaving. The batches stay in `out.by_owner`: deliver_staged still
// counts the h-relation from them at the barrier, single-threaded, which
// is what keeps StepComm accumulation race-free without shadow counters.
void EmEngine::post_group(RunState& rs, std::uint32_t host, std::uint32_t g,
                          ProcOutcome& out) {
  const std::uint32_t p = cfg_.p;
  obs::Tracer* const tr = tracer_.get();
  obs::SpanScope span(tr, tr ? &tr->host_shard(host) : nullptr,
                      obs::SpanKind::kNetPost, host, g, g, -1, phys_step_,
                      rs.round);
  std::uint64_t posted_bytes = 0;
  for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
    const auto& batch = out.by_owner[dst_g];
    if (batch.empty() || group_host_[dst_g] == host) continue;
    WriteArchive ar;
    ar.put<std::uint32_t>(g);
    ar.put<std::uint32_t>(dst_g);
    ar.put<std::uint64_t>(batch.size());
    for (const auto& m : batch) {
      ar.put<std::uint32_t>(m.src);
      ar.put<std::uint32_t>(m.dst);
      ar.put_bytes(m.payload);
    }
    posted_bytes += ar.size();
    net_->post(host, group_host_[dst_g], ar.take());
  }
  span.set_aux(posted_bytes);
}

// Run one phase across all p store groups: one worker per *live* host,
// each driving the groups currently assigned to it (ascending, so the
// disk-op order per group is independent of the assignment). A fail-stop
// crash (IoError kCrash) out of group g's own disks means machine g died —
// adopted groups run disarmed and cannot crash — so crashes are collected
// into a DeadProcsError for the fail-over path; any other error rethrows
// (the open mailbox round is aborted either way so the fault-coin cursors
// stay mode-independent — see SimNetwork::abort_round). With the network
// enabled each host posts a group's crossing batches as soon as the group
// finishes, so the pump overlaps delivery with the remaining compute.
std::vector<EmEngine::ProcOutcome> EmEngine::run_phase(RunState& rs,
                                                       bool compute) {
  const std::uint32_t p = cfg_.p;
  std::vector<ProcOutcome> outcomes(p);
  auto drive_host = [&](std::uint32_t host) {
    for (std::uint32_t g = 0; g < p; ++g) {
      if (group_host_[g] != host) continue;
      if (compute) {
        simulate_real_proc(rs, g, outcomes[g]);
      } else {
        regroup_real_proc(rs, g, outcomes[g]);
      }
      if (net_ && !sched_path() && !outcomes[g].error) {
        post_group(rs, host, g, outcomes[g]);
      }
    }
    if (net_ && !sched_path()) net_->finish_sender(host);
  };
  std::vector<std::uint32_t> hosts;
  for (std::uint32_t h = 0; h < p; ++h) {
    if (alive_[h]) hosts.push_back(h);
  }
  if (cfg_.use_threads && hosts.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(hosts.size());
    for (std::uint32_t h : hosts) {
      threads.emplace_back([&, h] { drive_host(h); });
    }
    for (auto& t : threads) t.join();
  } else {
    for (std::uint32_t h : hosts) drive_host(h);
  }
  std::vector<std::uint32_t> crashed;
  std::exception_ptr cause;
  for (std::uint32_t g = 0; g < p; ++g) {
    if (!outcomes[g].error) continue;
    if (!is_crash(outcomes[g].error)) {
      if (net_) net_->abort_round();
      std::rethrow_exception(outcomes[g].error);
    }
    crashed.push_back(g);
    if (!cause) cause = outcomes[g].error;
  }
  if (!crashed.empty()) {
    if (net_) net_->abort_round();
    if (cfg_.net.failover) throw DeadProcsError{std::move(crashed), cause};
    std::rethrow_exception(cause);
  }
  return outcomes;
}

// Deliver staged messages (p > 1). Communication cost is attributed to
// *hosts*: a message crosses the network iff the hosts of its source and
// destination groups differ (identical to the old src_r != dst_r when the
// assignment is the identity). With the simulated network enabled, the
// crossing batches already traveled during the phase: each host posted
// them (post_group) as MTU-fragmented per-link record streams through the
// reliable protocol, and collect() closes the round here at the barrier.
// NetStats picks up the wire tax (retransmissions, duplicates, corrupt
// frames) while StepComm keeps counting the delivered payload — the
// realized h-relation. Either way each store group then writes its
// arrivals, gathered in canonical (src_g-ascending) order and
// stable-sorted by (src, dst), so the bytes on disk are bit-identical
// between the direct path, the lossy-network path, any degraded-mode
// assignment, and both use_threads modes.
void EmEngine::deliver_staged(RunState& rs,
                              std::vector<ProcOutcome>& outcomes) {
  const std::uint32_t p = cfg_.p;
  obs::Tracer* const tr = tracer_.get();
  obs::TraceShard* const eshard = tr ? &tr->engine_shard() : nullptr;
  const std::uint32_t epid = tr ? tr->engine_pid() : 0;
  cgm::StepComm step;
  if (p > 1) {
    std::vector<std::uint64_t> sent(p, 0), recv(p, 0);
    for (std::uint32_t src_g = 0; src_g < p; ++src_g) {
      for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
        if (group_host_[src_g] == group_host_[dst_g]) continue;
        for (const auto& m : outcomes[src_g].by_owner[dst_g]) {
          const std::uint64_t n = m.payload.size();
          step.bytes += n;
          step.messages += 1;
          step.min_msg_bytes = std::min(step.min_msg_bytes, n);
          step.max_msg_bytes = std::max(step.max_msg_bytes, n);
          sent[group_host_[src_g]] += n;
          recv[group_host_[dst_g]] += n;
        }
      }
    }
    for (std::uint32_t r = 0; r < p; ++r) {
      step.max_sent = std::max(step.max_sent, sent[r]);
      step.max_recv = std::max(step.max_recv, recv[r]);
    }

    // batches[dst_g][src_g]: the (src_g -> dst_g) message batch, however
    // it traveled. Filled directly for same-host pairs, decoded from
    // network deliveries otherwise. Crossing batches were already posted
    // by post_group as self-delimiting records, one byte stream per
    // (host, host) link — records in (src_g, dst_g) order, so the stream
    // is canonical — which collect() fragments into frames of at most
    // net.mtu_bytes: a link fault costs one fragment's retransmission,
    // not a whole superstep's batch.
    std::vector<std::vector<std::vector<cgm::Message>>> batches(
        p, std::vector<std::vector<cgm::Message>>(p));
    const net::NetStats net_mark = net_ ? net_->stats() : net::NetStats{};
    for (std::uint32_t src_g = 0; src_g < p; ++src_g) {
      for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
        auto& batch = outcomes[src_g].by_owner[dst_g];
        if (batch.empty()) continue;
        if (net_ && group_host_[src_g] != group_host_[dst_g]) continue;
        batches[dst_g][src_g] = std::move(batch);
      }
    }
    if (net_ && !sched_path()) {
      obs::SpanScope net_span(tr, eshard, obs::SpanKind::kNetCollect, epid,
                              0, -1, -1, phys_step_, rs.round);
      std::vector<std::vector<net::Delivery>> inboxes;
      try {
        inboxes = net_->collect();
      } catch (const net::NetError&) {
        // Attribute the exhausted link before giving up: a fail-stopped
        // peer is a fail-over, an overwhelmed retry budget is an error.
        auto dead = net_->probe_dead();
        if (!dead.empty() && cfg_.net.failover) {
          throw DeadProcsError{std::move(dead), std::current_exception()};
        }
        throw;
      }
      for (std::uint32_t h = 0; h < p; ++h) {
        // Reassemble each sender's fragment stream (per-link delivery is
        // FIFO, so concatenation in arrival order restores it exactly),
        // then parse the self-delimiting batch records back out.
        std::vector<std::vector<std::byte>> stream_from(p);
        for (auto& d : inboxes[h]) {
          auto& s = stream_from[d.src];
          s.insert(s.end(), d.payload.begin(), d.payload.end());
        }
        for (std::uint32_t hs = 0; hs < p; ++hs) {
          if (stream_from[hs].empty()) continue;
          ReadArchive ar(stream_from[hs]);
          while (!ar.exhausted()) {
            const auto src_g = ar.get<std::uint32_t>();
            const auto dst_g = ar.get<std::uint32_t>();
            EMCGM_CHECK_MSG(
                src_g < p && dst_g < p && group_host_[dst_g] == h,
                "network delivery misrouted");
            const auto count = ar.get<std::uint64_t>();
            auto& batch = batches[dst_g][src_g];
            EMCGM_CHECK_MSG(batch.empty(),
                            "duplicate network batch delivered");
            batch.reserve(static_cast<std::size_t>(count));
            for (std::uint64_t k = 0; k < count; ++k) {
              cgm::Message m;
              m.src = ar.get<std::uint32_t>();
              m.dst = ar.get<std::uint32_t>();
              m.payload = ar.get_bytes();
              batch.push_back(std::move(m));
            }
          }
        }
      }
      const net::NetStats delta = net_->stats() - net_mark;
      step.wire_bytes = delta.wire_bytes;
      step.retransmissions = delta.retransmissions;
      net_span.set_aux(delta.wire_bytes, delta.retransmissions);
    } else if (net_) {
      // Non-direct collective schedule: execute the verified plan
      // literally. Each crossing (src_g, dst_g) batch record is bundled
      // into its (orig host, fin host) *flow* — records appended src_g
      // then dst_g ascending, so every flow's byte stream is canonical —
      // and flows move whole, one hop per schedule step, each step one
      // store-and-forward mailbox round through the same reliable
      // protocol as the direct path. The verifier proved exactly-once
      // delivery and balance on this plan, so after the last step every
      // flow sits at its fin host (checked again below, byte-level).
      obs::SpanScope net_span(tr, eshard, obs::SpanKind::kNetCollect, epid,
                              0, -1, -1, phys_step_, rs.round);
      const routing::CommSchedule& sched = *sched_;
      std::vector<std::vector<std::vector<std::byte>>> flow(
          p, std::vector<std::vector<std::byte>>(p));
      for (std::uint32_t src_g = 0; src_g < p; ++src_g) {
        for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
          const auto& batch = outcomes[src_g].by_owner[dst_g];
          if (batch.empty()) continue;
          const std::uint32_t hs = group_host_[src_g];
          const std::uint32_t hd = group_host_[dst_g];
          if (hs == hd) continue;  // staged directly above
          WriteArchive ar;
          ar.put<std::uint32_t>(src_g);
          ar.put<std::uint32_t>(dst_g);
          ar.put<std::uint64_t>(batch.size());
          for (const auto& m : batch) {
            ar.put<std::uint32_t>(m.src);
            ar.put<std::uint32_t>(m.dst);
            ar.put_bytes(m.payload);
          }
          const auto bytes = ar.take();
          auto& f = flow[hs][hd];
          f.insert(f.end(), bytes.begin(), bytes.end());
        }
      }
      for (std::size_t si = 0; si < sched.steps.size(); ++si) {
        const routing::ScheduleStep& stp = sched.steps[si];
        obs::SpanScope step_span(tr, eshard, obs::SpanKind::kSchedStep,
                                 epid, static_cast<std::uint32_t>(si), -1,
                                 -1, phys_step_, rs.round);
        net_->begin_round();
        std::uint64_t posted_bytes = 0, posted_transfers = 0;
        for (const routing::Transfer& t : stp.transfers) {
          // Envelope stream of this link: every non-empty flow the plan
          // moves over it, as (orig, fin, payload) records. Flows with no
          // bytes this superstep travel as nothing at all.
          WriteArchive ar;
          for (const routing::Flow& fl : t.flows) {
            auto& payload = flow[fl.first][fl.second];
            if (payload.empty()) continue;
            ar.put<std::uint32_t>(fl.first);
            ar.put<std::uint32_t>(fl.second);
            ar.put_bytes(payload);
            payload.clear();
          }
          if (ar.size() == 0) continue;
          posted_bytes += ar.size();
          posted_transfers += 1;
          net_->post(t.src, t.dst, ar.take());
        }
        for (std::uint32_t h = 0; h < p; ++h) {
          if (alive_[h]) net_->finish_sender(h);
        }
        std::vector<std::vector<net::Delivery>> inboxes;
        try {
          inboxes = net_->collect();
        } catch (const net::NetError&) {
          auto dead = net_->probe_dead();
          if (!dead.empty() && cfg_.net.failover) {
            throw DeadProcsError{std::move(dead),
                                 std::current_exception()};
          }
          throw;
        }
        for (std::uint32_t h = 0; h < p; ++h) {
          std::vector<std::vector<std::byte>> stream_from(p);
          for (auto& d : inboxes[h]) {
            auto& s = stream_from[d.src];
            s.insert(s.end(), d.payload.begin(), d.payload.end());
          }
          for (std::uint32_t hs = 0; hs < p; ++hs) {
            if (stream_from[hs].empty()) continue;
            ReadArchive ar(stream_from[hs]);
            while (!ar.exhausted()) {
              const auto o = ar.get<std::uint32_t>();
              const auto f = ar.get<std::uint32_t>();
              EMCGM_CHECK_MSG(o < p && f < p,
                              "schedule envelope names a bad flow");
              auto payload = ar.get_bytes();
              EMCGM_CHECK_MSG(!payload.empty() && flow[o][f].empty(),
                              "schedule flow duplicated in transit");
              flow[o][f] = std::move(payload);
            }
          }
        }
        step_span.set_aux(posted_bytes, posted_transfers);
      }
      for (std::uint32_t o = 0; o < p; ++o) {
        for (std::uint32_t f = 0; f < p; ++f) {
          if (flow[o][f].empty()) continue;
          ReadArchive ar(flow[o][f]);
          while (!ar.exhausted()) {
            const auto src_g = ar.get<std::uint32_t>();
            const auto dst_g = ar.get<std::uint32_t>();
            EMCGM_CHECK_MSG(src_g < p && dst_g < p &&
                                group_host_[src_g] == o &&
                                group_host_[dst_g] == f,
                            "scheduled delivery misrouted");
            const auto count = ar.get<std::uint64_t>();
            auto& batch = batches[dst_g][src_g];
            EMCGM_CHECK_MSG(batch.empty(),
                            "duplicate network batch delivered");
            batch.reserve(static_cast<std::size_t>(count));
            for (std::uint64_t k = 0; k < count; ++k) {
              cgm::Message m;
              m.src = ar.get<std::uint32_t>();
              m.dst = ar.get<std::uint32_t>();
              m.payload = ar.get_bytes();
              batch.push_back(std::move(m));
            }
          }
        }
      }
      const net::NetStats delta = net_->stats() - net_mark;
      step.wire_bytes = delta.wire_bytes;
      step.retransmissions = delta.retransmissions;
      net_span.set_aux(delta.wire_bytes, delta.retransmissions);
    }

    if (cfg_.chaos.invariants) {
      // Exactly-once delivery: the crossing messages decoded out of the
      // network (plus same-host staging) must equal, in count, the
      // crossing messages the h-relation accounting saw at the source —
      // a dropped-and-not-retransmitted or duplicated-and-not-deduped
      // batch shows up here, at the barrier it corrupted.
      std::uint64_t delivered = 0;
      for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
        for (std::uint32_t src_g = 0; src_g < p; ++src_g) {
          if (group_host_[src_g] == group_host_[dst_g]) continue;
          delivered += batches[dst_g][src_g].size();
        }
      }
      if (delivered != step.messages) {
        std::ostringstream os;
        os << "network delivered " << delivered
           << " crossing messages but the sources posted " << step.messages;
        throw chaos::InvariantViolation(chaos::Invariant::kExactlyOnce,
                                        os.str());
      }
    }

    std::vector<std::uint32_t> crashed;
    std::exception_ptr cause;
    for (std::uint32_t dst_g = 0; dst_g < p; ++dst_g) {
      std::vector<cgm::Message> arrivals;
      for (std::uint32_t src_g = 0; src_g < p; ++src_g) {
        for (auto& m : batches[dst_g][src_g]) {
          arrivals.push_back(std::move(m));
        }
      }
      if (!arrivals.empty()) {
        // Deterministic arrival order regardless of threading or routing;
        // stable so same-(src, dst) messages keep their program order.
        std::stable_sort(arrivals.begin(), arrivals.end(),
                         [](const cgm::Message& a, const cgm::Message& b) {
                           return a.src != b.src ? a.src < b.src
                                                 : a.dst < b.dst;
                         });
        // Arrival writes run at the barrier (main thread) but touch the
        // destination group's disks — render them there.
        obs::SpanScope span(tr, eshard, obs::SpanKind::kOutboxWrite,
                            group_host_[dst_g], dst_g, dst_g, -1,
                            phys_step_, rs.round,
                            tr ? &procs_[dst_g]->disks->stats() : nullptr);
        if (tr) {
          std::uint64_t bytes = 0;
          for (const auto& m : arrivals) bytes += m.payload.size();
          span.set_aux(arrivals.size(), bytes);
        }
        try {
          procs_[dst_g]->messages->write_messages(arrivals);
        } catch (const IoError& e) {
          // Group dst_g's own disks fail-stopped: machine dst_g died.
          if (e.kind() != IoErrorKind::kCrash) throw;
          crashed.push_back(dst_g);
          if (!cause) cause = std::current_exception();
        }
      }
    }
    if (!crashed.empty()) {
      if (cfg_.net.failover) {
        throw DeadProcsError{std::move(crashed), cause};
      }
      std::rethrow_exception(cause);
    }
  }
  rs.result.comm.steps.push_back(step);
  rs.result.comm_steps += 1;
}

// Async barrier companion to deliver_staged: the arrival writes above are
// write-behind, so their completion (and any crash they suffered) is
// collected here, before the stores flip and the superstep's I/O is
// recorded. Serial arrays make this a no-op.
void EmEngine::drain_arrival_writes() {
  std::vector<std::uint32_t> crashed;
  std::exception_ptr cause;
  for (std::uint32_t g = 0; g < cfg_.p; ++g) {
    auto& rp = *procs_[g];
    if (!rp.disks->async()) continue;
    try {
      rp.disks->drain();
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kCrash) throw;
      crashed.push_back(g);
      if (!cause) cause = std::current_exception();
    }
  }
  if (!crashed.empty()) {
    if (cfg_.net.failover) throw DeadProcsError{std::move(crashed), cause};
    std::rethrow_exception(cause);
  }
}

// ---------------------------------------------------------------- step ----

bool EmEngine::step() {
  ApiGuard guard(busy_, "step");
  EMCGM_CHECK_MSG(rs_ != nullptr,
                  "step() requires an active run (start()/start_resume())");
  RunState& rs = *rs_;
  if (rs.all_done) return false;
  const cgm::Program& program = *rs.program;
  const bool balanced = cfg_.balanced_routing;
  obs::Tracer* const tr = tracer_.get();
  obs::TraceShard* const eshard = tr ? &tr->engine_shard() : nullptr;
  const std::uint32_t epid = tr ? tr->engine_pid() : 0;

  EMCGM_CHECK_MSG(rs.round < kMaxRounds,
                  "program '" << program.name() << "' exceeded "
                              << kMaxRounds << " rounds");
  // No-progress watchdog (cfg_.chaos.invariants): a high-water mark on the
  // (round, phase) key. Every clean superstep ends by advancing round or
  // phase, so the key moves strictly forward; only fail-over / rejoin
  // replays legitimately revisit it, and their replay chains are bounded by
  // the membership schedule. watchdog_steps consecutive steps without a new
  // high-water mark therefore means livelock, not recovery.
  if (cfg_.chaos.invariants) {
    const std::uint32_t ph = static_cast<std::uint32_t>(rs.phase);
    const bool advanced = !rs.wd_seen || rs.round > rs.wd_hw_round ||
                          (rs.round == rs.wd_hw_round && ph > rs.wd_hw_phase);
    if (advanced) {
      rs.wd_seen = true;
      rs.wd_hw_round = rs.round;
      rs.wd_hw_phase = ph;
      rs.wd_stall = 0;
    } else if (++rs.wd_stall >= cfg_.chaos.watchdog_steps) {
      std::ostringstream os;
      os << "no superstep progress past (round " << rs.wd_hw_round
         << ", phase " << rs.wd_hw_phase << ") for " << rs.wd_stall
         << " physical supersteps (watchdog_steps = "
         << cfg_.chaos.watchdog_steps << ")";
      throw chaos::InvariantViolation(chaos::Invariant::kWatchdog, os.str());
    }
  }
  try {
    // Engine-shard backbone: one superstep span per physical step; child
    // barrier spans (heartbeat, net collect, commit) nest inside it.
    obs::SpanScope step_span(tr, eshard, obs::SpanKind::kSuperstep, epid, 0,
                             -1, -1, phys_step_, rs.round);
    step_span.set_aux(static_cast<std::uint64_t>(rs.phase));
    if (net_) {
      // The physical superstep clock drives the fail-stop trigger and the
      // failure detector. It is monotonic: a replayed superstep is a new
      // physical step, so a fault schedule never re-fires "in the past".
      net_->set_step(phys_step_);
      if (cfg_.net.failover) {
        obs::SpanScope hb_span(tr, eshard, obs::SpanKind::kHeartbeat, epid,
                               0, -1, -1, phys_step_, rs.round);
        auto newly_dead = net_->heartbeat_round(phys_step_);
        hb_span.set_aux(newly_dead.size());
        if (!newly_dead.empty()) {
          throw DeadProcsError{std::move(newly_dead), nullptr};
        }
      }
      // Deaths take priority (the heartbeat above threw): a rejoin racing
      // a second death is admitted at the next barrier, after the
      // fail-over settled — deterministically, in every threading mode.
      try_rejoin(rs.round, rs.result);
    }
    if (rs.phase == Phase::kCompute) {
      // Open the superstep's mailbox round: hosts post crossing batches
      // as their groups finish; deliver_staged collects at the barrier.
      // A non-direct schedule opens its rounds at the barrier instead.
      if (net_ && !sched_path()) net_->begin_round();
      auto outcomes = run_phase(rs, /*compute=*/true);
      rs.result.app_rounds += 1;

      bool any_done = false;
      rs.all_done = true;
      for (const auto& o : outcomes) {
        for (char d : o.done) {
          any_done = any_done || d;
          rs.all_done = rs.all_done && d;
        }
      }
      EMCGM_CHECK_MSG(any_done == rs.all_done,
                      "program '" << program.name()
                                  << "' disagreed on termination at round "
                                  << rs.round);
      for (auto& rp : procs_) rp->contexts->flip();
      if (rs.all_done) {
        // A final round sends nothing (enforced above), so the open
        // mailbox round is empty — close it without a delivery pass. The
        // scheduled path never opened one (and would run zero-byte steps).
        if (net_ && !sched_path()) {
          obs::SpanScope net_span(tr, eshard, obs::SpanKind::kNetCollect,
                                  epid, 0, -1, -1, phys_step_, rs.round);
          net_->collect();
        }
        if (cfg_.checkpointing) commit(rs.round, Phase::kDone);
        verify_drained("the final barrier");
        record_step_io(rs, "final", false, rs.round);
        ++phys_step_;
        return false;
      }

      deliver_staged(rs, outcomes);
      drain_arrival_writes();
      verify_drained("the compute barrier");
      for (auto& rp : procs_) rp->messages->flip();
      const std::uint64_t ran_round = rs.round;
      if (balanced) {
        rs.phase = Phase::kRegroup;
      } else {
        ++rs.round;
      }
      if (cfg_.checkpointing) commit(rs.round, rs.phase);
      record_step_io(rs, "compute", true, ran_round);
    } else {
      if (net_ && !sched_path()) net_->begin_round();
      auto regroup = run_phase(rs, /*compute=*/false);
      deliver_staged(rs, regroup);
      drain_arrival_writes();
      verify_drained("the regroup barrier");
      for (auto& rp : procs_) rp->messages->flip();
      const std::uint64_t ran_round = rs.round;
      rs.phase = Phase::kCompute;
      ++rs.round;
      if (cfg_.checkpointing) commit(rs.round, rs.phase);
      record_step_io(rs, "regroup", true, ran_round);
    }
    ++phys_step_;
  } catch (const DeadProcsError& e) {
    // One or more machines died mid-superstep. Absorb the loss (or rethrow
    // the underlying fault if fail-over cannot help) and replay from the
    // last committed boundary with the new ownership map.
    failover(e.procs, e.cause, rs.result);
    rs.round = commit_.round;
    rs.phase = commit_.phase;
    rs.all_done = (rs.phase == Phase::kDone);
    ++phys_step_;
  }
  return !rs.all_done;
}

std::vector<cgm::PartitionSet> EmEngine::finish() {
  ApiGuard guard(busy_, "finish");
  EMCGM_CHECK_MSG(rs_ != nullptr,
                  "finish() requires an active run (start()/start_resume())");
  EMCGM_CHECK_MSG(rs_->all_done,
                  "finish() before the program finished (drive step() until"
                  " it returns false)");
  RunState& rs = *rs_;
  const cgm::Program& program = *rs.program;
  const std::uint32_t v = cfg_.v;
  const std::uint32_t nloc = nlocal();
  obs::Tracer* const tr = tracer_.get();
  obs::TraceShard* const eshard = tr ? &tr->engine_shard() : nullptr;
  const std::uint32_t epid = tr ? tr->engine_pid() : 0;

  // ------------------------------------------------------ collect output --
  // A machine can still fail-stop here, while its contexts are being read
  // back; the final boundary is committed (Phase::kDone), so absorbing the
  // loss and re-reading through the survivor is safe.
  std::vector<cgm::PartitionSet> outputs;
  obs::SpanScope out_span(tr, eshard, obs::SpanKind::kOutputCollect, epid, 0,
                          -1, -1, phys_step_, rs.round);
  out_span.set_aux(v);
  for (;;) {
    std::uint32_t reading_group = 0;
    try {
      outputs.clear();
      for (std::uint32_t g = 0; g < v; ++g) {
        reading_group = owner_of(g);
        auto& rp = *procs_[reading_group];
        const auto blob = rp.contexts->read(g % nloc);
        auto state = program.make_state();
        auto unpacked = unpack_context(blob, *state);
        if (unpacked.outputs.size() > outputs.size()) {
          outputs.resize(unpacked.outputs.size());
          for (auto& slot : outputs) slot.parts.resize(v);
        }
        for (std::size_t k = 0; k < unpacked.outputs.size(); ++k) {
          outputs[k].parts[g] = std::move(unpacked.outputs[k]);
        }
      }
      break;
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kCrash || !cfg_.net.failover) throw;
      failover({reading_group}, std::current_exception(), rs.result);
    }
  }
  for (auto& slot : outputs) slot.parts.resize(v);

  record_step_io(rs, "output", false, rs.round);  // output-collection reads

  pdm::IoStats io_after;
  for (auto& rp : procs_) io_after += rp->disks->stats();
  rs.result.io = io_after - rs.io_before;
  if (net_) rs.result.net = net_->stats() - rs.net_before;

  rs.result.wall_s = rs.timer.elapsed_s();
  last_ = rs.result;
  total_ += rs.result;
  rs_.reset();
  return outputs;
}

}  // namespace emcgm::em

