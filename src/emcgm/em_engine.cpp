#include "emcgm/em_engine.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "cgm/proc_ctx.h"
#include "pdm/checksum.h"
#include "routing/balanced_routing.h"
#include "util/error.h"
#include "util/timer.h"

namespace emcgm::em {

namespace {

constexpr std::uint64_t kMaxRounds = 1u << 20;

// Commit-record framing (superstep checkpointing).
constexpr std::uint32_t kCkptMagic = 0x454D4B50;  // "EMKP"
constexpr std::uint32_t kCkptVersion = 1;

// Serialized context layout: inputs (round 0 only), program state, outputs.
std::vector<std::byte> pack_context(
    const std::vector<std::vector<std::byte>>& inputs,
    const cgm::ProcState& state,
    const std::vector<std::vector<std::byte>>& outputs) {
  WriteArchive ar;
  ar.put<std::uint64_t>(inputs.size());
  for (const auto& in : inputs) ar.put_bytes(in);
  state.save(ar);
  // Outputs go last so that state.load() consumes exactly its own bytes.
  // (We cannot put them before the state: load() reads a fixed field
  // sequence, so anything preceding it must have a known structure.)
  WriteArchive tail;
  tail.put<std::uint64_t>(outputs.size());
  for (const auto& o : outputs) tail.put_bytes(o);
  ar.write_raw(tail.buffer().data(), tail.size());
  return ar.take();
}

struct UnpackedContext {
  std::vector<std::vector<std::byte>> inputs;
  std::vector<std::vector<std::byte>> outputs;
};

UnpackedContext unpack_context(std::span<const std::byte> blob,
                               cgm::ProcState& state) {
  ReadArchive ar(blob);
  UnpackedContext ctx;
  const auto n_in = ar.get<std::uint64_t>();
  ctx.inputs.reserve(static_cast<std::size_t>(n_in));
  for (std::uint64_t k = 0; k < n_in; ++k) ctx.inputs.push_back(ar.get_bytes());
  state.load(ar);
  const auto n_out = ar.get<std::uint64_t>();
  ctx.outputs.reserve(static_cast<std::size_t>(n_out));
  for (std::uint64_t k = 0; k < n_out; ++k) {
    ctx.outputs.push_back(ar.get_bytes());
  }
  EMCGM_CHECK_MSG(ar.exhausted(), "context blob has trailing bytes");
  return ctx;
}

}  // namespace

struct EmEngine::RealProc {
  std::unique_ptr<pdm::DiskArray> disks;
  pdm::TrackSpace space;
  std::unique_ptr<ContextStore> contexts;
  std::unique_ptr<MessageStore> messages;

  // Two alternating on-disk slots for superstep commit records, so a crash
  // while writing record k+1 leaves record k intact.
  struct CkptSlot {
    pdm::TrackRegion tracks;
    pdm::StripeCursor cursor;
    pdm::Extent extent{};

    CkptSlot(pdm::TrackSpace& space, std::uint32_t D)
        : tracks(space, 64), cursor(D) {}
  };
  std::optional<CkptSlot> ckpt[2];

  RealProc(const cgm::MachineConfig& cfg, std::uint32_t index) {
    std::string dir;
    if (cfg.backend == pdm::BackendKind::kFile) {
      dir = cfg.file_dir + "/proc" + std::to_string(index);
    }
    pdm::DiskArrayOptions opts;
    opts.checksums = cfg.checksums;
    opts.retry = cfg.retry;
    disks = pdm::make_disk_array(cfg.backend, cfg.disk, dir, opts, cfg.fault);
    ckpt[0].emplace(space, cfg.disk.num_disks);
    ckpt[1].emplace(space, cfg.disk.num_disks);
  }
};

EmEngine::EmEngine(cgm::MachineConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  if (cfg_.single_copy_matrix) {
    EMCGM_CHECK_MSG(cfg_.layout == cgm::MsgLayout::kStaggeredMatrix,
                    "single_copy_matrix requires the staggered layout");
  }
  procs_.reserve(cfg_.p);
  for (std::uint32_t r = 0; r < cfg_.p; ++r) {
    procs_.push_back(std::make_unique<RealProc>(cfg_, r));
  }
}

EmEngine::~EmEngine() = default;

const pdm::IoStats& EmEngine::io_stats(std::uint32_t real_proc) const {
  EMCGM_CHECK(real_proc < cfg_.p);
  return procs_[real_proc]->disks->stats();
}

std::uint64_t EmEngine::tracks_used(std::uint32_t real_proc) const {
  EMCGM_CHECK(real_proc < cfg_.p);
  return procs_[real_proc]->disks->tracks_used();
}

pdm::DiskArray& EmEngine::disk_array(std::uint32_t real_proc) {
  EMCGM_CHECK(real_proc < cfg_.p);
  return *procs_[real_proc]->disks;
}

void EmEngine::disarm_faults() {
  for (auto& rp : procs_) {
    if (auto* f = rp->disks->fault_injector()) f->disarm();
  }
}

std::uint64_t EmEngine::checkpoint_round() const {
  EMCGM_CHECK_MSG(commit_.valid, "no committed checkpoint");
  return commit_.round;
}

// -------------------------------------------------------------- commit ----

void EmEngine::commit(std::uint64_t round, Phase phase) {
  const std::uint64_t seq = commit_.seq + 1;
  const int slot = static_cast<int>(seq % 2);
  for (auto& rp : procs_) {
    WriteArchive ar;
    ar.put<std::uint32_t>(kCkptMagic);
    ar.put<std::uint32_t>(kCkptVersion);
    ar.put<std::uint64_t>(seq);
    ar.put<std::uint64_t>(round);
    ar.put<std::uint32_t>(static_cast<std::uint32_t>(phase));
    rp->contexts->save(ar);
    rp->messages->save(ar);
    ar.put<std::uint32_t>(pdm::crc32c(ar.buffer()));
    auto blob = ar.take();

    auto& ck = *rp->ckpt[slot];
    ck.cursor.reset();
    ck.extent = ck.cursor.alloc(blob.size(), rp->disks->block_bytes());
    pdm::write_striped(*rp->disks, ck.tracks, ck.extent, blob);
  }
  commit_ = Commit{true, seq, round, phase};
}

void EmEngine::restore_from_commit() {
  EMCGM_CHECK_MSG(commit_.valid, "no committed checkpoint to resume from");
  const int slot = static_cast<int>(commit_.seq % 2);
  for (auto& rp : procs_) {
    EMCGM_CHECK_MSG(rp->contexts && rp->messages,
                    "resume() before run() set up the stores");
    auto& ck = *rp->ckpt[slot];
    std::vector<std::byte> blob(ck.extent.bytes);
    pdm::read_striped(*rp->disks, ck.tracks, ck.extent, blob);

    EMCGM_CHECK_MSG(blob.size() > 4, "commit record truncated");
    const auto body =
        std::span<const std::byte>(blob.data(), blob.size() - 4);
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
    if (stored_crc != pdm::crc32c(body)) {
      throw IoError(IoErrorKind::kCorruption,
                    "commit record checksum mismatch");
    }
    ReadArchive ar(body);
    const auto magic = ar.get<std::uint32_t>();
    const auto version = ar.get<std::uint32_t>();
    if (magic != kCkptMagic || version != kCkptVersion) {
      throw IoError(IoErrorKind::kCorruption,
                    "commit record has bad magic/version");
    }
    const auto seq = ar.get<std::uint64_t>();
    const auto round = ar.get<std::uint64_t>();
    const auto phase = ar.get<std::uint32_t>();
    EMCGM_CHECK_MSG(seq == commit_.seq && round == commit_.round &&
                        phase == static_cast<std::uint32_t>(commit_.phase),
                    "commit record does not match the in-memory commit mark");
    rp->contexts->load(ar);
    rp->messages->load(ar);
    EMCGM_CHECK_MSG(ar.exhausted(), "commit record has trailing bytes");
  }
}

// ----------------------------------------------------------------- run ----

std::vector<cgm::PartitionSet> EmEngine::run(
    const cgm::Program& program, std::vector<cgm::PartitionSet> inputs) {
  const std::uint32_t v = cfg_.v;
  const std::uint32_t p = cfg_.p;
  const std::uint32_t nloc = nlocal();

  commit_ = Commit{};
  running_program_ = program.name();

  pdm::IoStats io_before;
  for (auto& rp : procs_) io_before += rp->disks->stats();

  // ------------------------------------------------------------- set-up --
  for (const auto& slot : inputs) {
    EMCGM_CHECK_MSG(slot.parts.size() == v,
                    "input PartitionSet must have v parts");
  }
  std::uint64_t total_input_bytes = 0;
  for (const auto& slot : inputs) {
    for (const auto& part : slot.parts) total_input_bytes += part.size();
  }

  // Staggered-slot capacity: explicit hint, or the Lemma 2 bound
  // 2 * ceil(N / v^2) plus fragment-header slack for balanced routing.
  std::size_t slot_bytes = cfg_.staggered_slot_bytes;
  if (cfg_.layout == cgm::MsgLayout::kStaggeredMatrix && slot_bytes == 0) {
    EMCGM_CHECK_MSG(cfg_.balanced_routing,
                    "staggered layout without balanced routing has no"
                    " message-size bound; set staggered_slot_bytes or use"
                    " the chained layout");
    const std::uint64_t B = cfg_.disk.block_bytes;
    const std::uint64_t lemma2_floor =
        static_cast<std::uint64_t>(v) * v * B +
        static_cast<std::uint64_t>(v) * v * (v - 1) / 2;
    EMCGM_CHECK_MSG(total_input_bytes >= lemma2_floor,
                    "Lemma 2 precondition N >= v^2*B + v^2(v-1)/2 violated"
                    " (N=" << total_input_bytes << " bytes, floor="
                           << lemma2_floor
                           << "); use the chained layout or set"
                              " staggered_slot_bytes explicitly");
    // Lemma 2 bounds a balanced message by 2 * ceil(h/v) where h is the
    // per-processor communication volume; algorithms commonly attach
    // routing tags that double the input volume (e.g. the sort's tie-break
    // ids), so the derived default allows a 2x expansion plus the
    // fragment-header slack. Programs with larger expansion must set
    // staggered_slot_bytes explicitly.
    slot_bytes = static_cast<std::size_t>(
        4 * ceil_div(total_input_bytes, std::uint64_t{v} * v) + 64ULL * v +
        128);
  }

  // Fresh stores per run; the disk arrays (and their statistics) persist.
  for (std::uint32_t r = 0; r < p; ++r) {
    auto& rp = *procs_[r];
    rp.contexts = std::make_unique<ContextStore>(*rp.disks, rp.space, nloc);
    MessageStoreConfig mcfg;
    mcfg.v = v;
    mcfg.local_base = r * nloc;
    mcfg.nlocal = nloc;
    mcfg.slot_bytes = slot_bytes;
    mcfg.single_copy = cfg_.single_copy_matrix;
    rp.messages =
        make_message_store(cfg_.layout, *rp.disks, rp.space, mcfg);
  }

  // Write initial contexts: the input partitions plus a fresh program state.
  {
    const auto fresh = program.make_state();
    WriteArchive probe;
    fresh->save(probe);  // ensure save() works on a default state up front
  }
  for (std::uint32_t g = 0; g < v; ++g) {
    std::vector<std::vector<std::byte>> mine;
    mine.reserve(inputs.size());
    for (auto& slot : inputs) mine.push_back(std::move(slot.parts[g]));
    const auto state = program.make_state();
    const auto blob = pack_context(mine, *state, {});
    procs_[owner_of(g)]->contexts->write(g % nloc, blob);
  }
  for (auto& rp : procs_) rp->contexts->flip();

  // Superstep 0 is now recoverable: the inputs live on disk.
  if (cfg_.checkpointing) commit(0, Phase::kCompute);

  return run_loop(program, 0, Phase::kCompute, io_before);
}

std::vector<cgm::PartitionSet> EmEngine::resume(const cgm::Program& program) {
  EMCGM_CHECK_MSG(cfg_.checkpointing,
                  "resume() requires cfg.checkpointing = true");
  EMCGM_CHECK_MSG(program.name() == running_program_,
                  "resume() must be called with the program passed to run()"
                  " (got '" << program.name() << "', ran '"
                            << running_program_ << "')");
  restore_from_commit();

  pdm::IoStats io_before;
  for (auto& rp : procs_) io_before += rp->disks->stats();
  return run_loop(program, commit_.round, commit_.phase, io_before);
}

// ----------------------------------------------------------- main loop ----

std::vector<cgm::PartitionSet> EmEngine::run_loop(
    const cgm::Program& program, std::uint64_t start_round, Phase start_phase,
    const pdm::IoStats& io_before) {
  Timer timer;
  const std::uint32_t v = cfg_.v;
  const std::uint32_t p = cfg_.p;
  const std::uint32_t nloc = nlocal();
  const bool balanced = cfg_.balanced_routing;
  cgm::RunResult result;

  // Per-superstep I/O trace: delta of the summed disk statistics.
  pdm::IoStats trace_mark = io_before;
  auto record_step_io = [&] {
    pdm::IoStats now;
    for (auto& rp : procs_) now += rp->disks->stats();
    result.io_per_step.push_back(now - trace_mark);
    trace_mark = now;
  };

  // One real processor's work during a computation superstep.
  struct ProcOutcome {
    // outgoing physical messages grouped by owning real processor
    std::vector<std::vector<cgm::Message>> by_owner;
    std::vector<char> done;  // per local vproc
    std::exception_ptr error;
  };

  auto simulate_real_proc = [&](std::uint32_t r, std::uint64_t round,
                                ProcOutcome& out) {
    try {
      auto& rp = *procs_[r];
      out.by_owner.assign(p, {});
      out.done.assign(nloc, 0);
      for (std::uint32_t jl = 0; jl < nloc; ++jl) {
        const std::uint32_t g = r * nloc + jl;
        // (a) context in.
        const auto blob = rp.contexts->read(jl);
        auto state = program.make_state();
        auto unpacked = unpack_context(blob, *state);
        // (b) messages in.
        auto inbox = rp.messages->read_incoming(g);
        if (balanced && round > 0) {
          inbox = routing::decode_phase_b(v, g, inbox);
        }
        // (c) compute.
        cgm::ProcCtx pctx(g, v, cfg_.seed);
        pctx.set_inputs(std::move(unpacked.inputs));
        pctx.outputs() = std::move(unpacked.outputs);
        pctx.begin_superstep(round, std::move(inbox));
        program.round(pctx, *state);
        out.done[jl] = program.done(pctx, *state) ? 1 : 0;
        auto outbox = pctx.take_outbox();
        if (out.done[jl]) {
          EMCGM_CHECK_MSG(outbox.empty(),
                          "program '" << program.name()
                                      << "' sent messages in its final round");
        }
        auto physical = balanced ? routing::encode_phase_a(v, g, outbox)
                                 : std::move(outbox);
        // (d) messages out. Locally addressed messages are written
        // immediately when p == 1 (Algorithm 2 order, which is what the
        // Observation-2 freed-slot reuse relies on); with p > 1 everything
        // is delivered at superstep end (Algorithm 3: "upon arrival").
        if (p == 1) {
          rp.messages->write_messages(physical);
        } else {
          for (auto& m : physical) {
            out.by_owner[owner_of(m.dst)].push_back(std::move(m));
          }
        }
        // (e) context out (inputs are consumed by round 0).
        const auto new_blob = pack_context({}, *state, pctx.outputs());
        if (cfg_.memory_bytes > 0) {
          const std::size_t resident = new_blob.size() + pctx.resident_bytes();
          EMCGM_CHECK_MSG(resident <= cfg_.memory_bytes,
                          "virtual processor " << g << " needs " << resident
                                               << " bytes but M = "
                                               << cfg_.memory_bytes);
        }
        rp.contexts->write(jl, new_blob);
      }
    } catch (...) {
      out.error = std::current_exception();
    }
  };

  // Engine-side regrouping superstep of balanced routing (Lemma 2); touches
  // only the message store — contexts are not read or written.
  auto regroup_real_proc = [&](std::uint32_t r, ProcOutcome& out) {
    try {
      auto& rp = *procs_[r];
      out.by_owner.assign(p, {});
      for (std::uint32_t jl = 0; jl < nloc; ++jl) {
        const std::uint32_t g = r * nloc + jl;
        auto inbox = rp.messages->read_incoming(g);
        auto physical = routing::transform_intermediate(v, g, inbox);
        if (p == 1) {
          rp.messages->write_messages(physical);
        } else {
          for (auto& m : physical) {
            out.by_owner[owner_of(m.dst)].push_back(std::move(m));
          }
        }
      }
    } catch (...) {
      out.error = std::current_exception();
    }
  };

  auto run_phase = [&](auto&& fn) {
    std::vector<ProcOutcome> outcomes(p);
    if (cfg_.use_threads && p > 1) {
      std::vector<std::thread> threads;
      threads.reserve(p);
      for (std::uint32_t r = 0; r < p; ++r) {
        threads.emplace_back([&, r] { fn(r, outcomes[r]); });
      }
      for (auto& t : threads) t.join();
    } else {
      for (std::uint32_t r = 0; r < p; ++r) fn(r, outcomes[r]);
    }
    for (auto& o : outcomes) {
      if (o.error) std::rethrow_exception(o.error);
    }
    return outcomes;
  };

  // Deliver staged messages (p > 1): network traffic is counted, then each
  // real processor writes its arrivals to its own disks in one batch.
  auto deliver_staged = [&](std::vector<ProcOutcome>& outcomes) {
    cgm::StepComm step;
    if (p > 1) {
      // Network accounting: only messages crossing real-processor
      // boundaries cost communication time on the target machine.
      std::vector<std::uint64_t> sent(p, 0), recv(p, 0);
      for (std::uint32_t src_r = 0; src_r < p; ++src_r) {
        for (std::uint32_t dst_r = 0; dst_r < p; ++dst_r) {
          if (src_r == dst_r) continue;
          for (const auto& m : outcomes[src_r].by_owner[dst_r]) {
            const std::uint64_t n = m.payload.size();
            step.bytes += n;
            step.messages += 1;
            step.min_msg_bytes = std::min(step.min_msg_bytes, n);
            step.max_msg_bytes = std::max(step.max_msg_bytes, n);
            sent[src_r] += n;
            recv[dst_r] += n;
          }
        }
      }
      for (std::uint32_t r = 0; r < p; ++r) {
        step.max_sent = std::max(step.max_sent, sent[r]);
        step.max_recv = std::max(step.max_recv, recv[r]);
      }
      for (std::uint32_t dst_r = 0; dst_r < p; ++dst_r) {
        std::vector<cgm::Message> arrivals;
        for (std::uint32_t src_r = 0; src_r < p; ++src_r) {
          auto& batch = outcomes[src_r].by_owner[dst_r];
          for (auto& m : batch) arrivals.push_back(std::move(m));
        }
        if (!arrivals.empty()) {
          // Deterministic arrival order regardless of threading.
          std::sort(arrivals.begin(), arrivals.end(),
                    [](const cgm::Message& a, const cgm::Message& b) {
                      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                    });
          procs_[dst_r]->messages->write_messages(arrivals);
        }
      }
    }
    result.comm.steps.push_back(step);
    result.comm_steps += 1;
  };

  std::uint64_t round = start_round;
  Phase phase = start_phase;
  bool all_done = (phase == Phase::kDone);

  while (!all_done) {
    EMCGM_CHECK_MSG(round < kMaxRounds,
                    "program '" << program.name() << "' exceeded "
                                << kMaxRounds << " rounds");
    if (phase == Phase::kCompute) {
      auto outcomes = run_phase([&](std::uint32_t r, ProcOutcome& o) {
        simulate_real_proc(r, round, o);
      });
      result.app_rounds += 1;

      bool any_done = false;
      all_done = true;
      for (const auto& o : outcomes) {
        for (char d : o.done) {
          any_done = any_done || d;
          all_done = all_done && d;
        }
      }
      EMCGM_CHECK_MSG(any_done == all_done,
                      "program '" << program.name()
                                  << "' disagreed on termination at round "
                                  << round);
      for (auto& rp : procs_) rp->contexts->flip();
      if (all_done) {
        if (cfg_.checkpointing) commit(round, Phase::kDone);
        record_step_io();
        break;
      }

      deliver_staged(outcomes);
      for (auto& rp : procs_) rp->messages->flip();
      if (balanced) {
        phase = Phase::kRegroup;
      } else {
        ++round;
      }
      if (cfg_.checkpointing) commit(round, phase);
      record_step_io();
    } else {
      auto regroup = run_phase([&](std::uint32_t r, ProcOutcome& o) {
        regroup_real_proc(r, o);
      });
      deliver_staged(regroup);
      for (auto& rp : procs_) rp->messages->flip();
      phase = Phase::kCompute;
      ++round;
      if (cfg_.checkpointing) commit(round, phase);
      record_step_io();
    }
  }

  // ------------------------------------------------------ collect output --
  std::vector<cgm::PartitionSet> outputs;
  for (std::uint32_t g = 0; g < v; ++g) {
    auto& rp = *procs_[owner_of(g)];
    const auto blob = rp.contexts->read(g % nloc);
    auto state = program.make_state();
    auto unpacked = unpack_context(blob, *state);
    if (unpacked.outputs.size() > outputs.size()) {
      outputs.resize(unpacked.outputs.size());
      for (auto& slot : outputs) slot.parts.resize(v);
    }
    for (std::size_t k = 0; k < unpacked.outputs.size(); ++k) {
      outputs[k].parts[g] = std::move(unpacked.outputs[k]);
    }
  }
  for (auto& slot : outputs) slot.parts.resize(v);

  record_step_io();  // output-collection reads

  pdm::IoStats io_after;
  for (auto& rp : procs_) io_after += rp->disks->stats();
  result.io = io_after - io_before;

  result.wall_s = timer.elapsed_s();
  last_ = result;
  total_ += result;
  return outputs;
}

}  // namespace emcgm::em
