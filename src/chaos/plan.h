// Composed chaos plans: one seed -> one deterministic fault schedule across
// every fault surface the simulator has.
//
// The existing fault knobs are scattered by design — disk faults live in
// pdm::FaultPlan, link faults and membership schedules in net::NetFaultPlan,
// capacity quotas in chaos::ChaosConfig — because each layer owns its own
// failure model. A ChaosPlan is the composition layer on top: a flat list of
// typed ChaosEvents that apply() lowers onto a MachineConfig, arming all of
// them at once. The event-list representation is deliberate:
//
//   * it is what the delta-debugging shrinker (shrink.h) minimizes — events
//     can be removed one by one, and because every per-layer schedule is
//     seeded from the *plan* seed (not from event positions), removing one
//     event does not perturb when the surviving events fire;
//   * it serializes to a small JSON document, the repro artifact a failing
//     fuzz run leaves behind (to_json/parse_json round-trip exactly);
//   * generate() draws it from one seed, so a fuzz campaign is replayed by
//     its seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgm/config.h"

namespace emcgm::chaos {

/// One composed fault. Field meaning depends on `kind` (see the enum): disk
/// events target real processor `proc` and use `value` as the per-disk op
/// trigger; link events are machine-wide and use `prob`; membership events
/// use `proc` + `value` (the physical superstep); a quota event uses `proc`
/// + `value` (the per-disk byte quota); a schedule event is machine-wide and
/// uses `value` as the routing::ScheduleKind index.
struct ChaosEvent {
  enum class Kind : std::uint32_t {
    kTransientRead,   ///< proc's Nth per-disk read fails (value = N)
    kTransientWrite,  ///< proc's Nth per-disk write fails (value = N)
    kTornWrite,       ///< proc's Nth per-disk write persists a prefix only
    kBitflip,         ///< proc's Nth per-disk write flips one byte at rest
    kDiskCrash,       ///< proc's disks fail-stop after `value` parallel ops
    kLinkDrop,        ///< frames vanish with probability `prob`
    kLinkDup,         ///< frames deliver twice with probability `prob`
    kLinkCorrupt,     ///< one byte flips in flight with probability `prob`
    kLinkReorder,     ///< frames overtake successors with probability `prob`
    kLinkDelay,       ///< congestion delay with probability `prob`
    kKill,            ///< processor `proc` fail-stops at step `value`
    kRejoin,          ///< processor `proc` reboots at step `value`
    kDiskQuota,       ///< proc's disks capped at `value` bytes each
    kSchedule,        ///< run under collective schedule `value` (0..3)
  };

  Kind kind = Kind::kTransientRead;
  std::uint32_t proc = 0;
  std::uint64_t value = 0;
  double prob = 0.0;

  friend bool operator==(const ChaosEvent&, const ChaosEvent&) = default;
};

const char* to_string(ChaosEvent::Kind kind);

/// Bounds for generate(): which fault surfaces a campaign draws from and how
/// hard it pushes them. The defaults match the nightly soak sweep.
struct PlanShape {
  std::uint32_t p = 2;            ///< real processors of the target machine
  std::uint32_t max_events = 6;   ///< events per plan (>= 1 drawn uniformly)
  std::uint64_t max_disk_op = 24; ///< trigger range of per-disk op events
  std::uint64_t max_step = 8;     ///< step range of kill/rejoin events
  double max_prob = 0.2;          ///< ceiling of link fault probabilities
  /// Byte-quota range of kDiskQuota events, as a [min, max] window chosen to
  /// straddle the workload's actual footprint so some draws abort and some
  /// squeak by. 0 disables quota events.
  std::uint64_t quota_min_bytes = 0;
  std::uint64_t quota_max_bytes = 0;
  bool allow_disk_crash = true;  ///< kDiskCrash events (need checkpointing)
  bool allow_kill = true;        ///< kKill events (need net.failover, p > 1)
  bool allow_rejoin = true;      ///< kKill+kRejoin pairs (need net.rejoin)
  /// kSchedule events: run the plan under a drawn collective schedule
  /// (p > 1). Off by default so pre-existing seeded campaigns replay the
  /// exact event streams they always drew.
  bool allow_schedule = false;
  /// Tenant targeting for multi-job service runs (src/svc): -1 — the
  /// default — arms the generated plan machine-wide, i.e. on the single job
  /// a plan is applied to; >= 0 names the job (by submission index) whose
  /// machine the plan is armed on, with every co-resident tenant left
  /// untouched. Does not change what generate() draws — `p` must then be
  /// the *target job's* processor count, not the pool's host count.
  std::int32_t target_tenant = -1;
};

/// A composed, seeded, serializable fault schedule.
struct ChaosPlan {
  std::uint64_t seed = 1;  ///< seeds every per-layer coin stream
  std::vector<ChaosEvent> events;

  /// Lower the plan onto a machine config: per-processor disk FaultPlans,
  /// link fault probabilities (multiple events of one class keep the max),
  /// the membership schedule, and per-processor quotas. Membership events
  /// switch on the engine features they need (net.enabled/failover/rejoin +
  /// checkpointing); a kRejoin with no earlier kKill of the same processor
  /// is dropped (a reboot of a machine that never died is a no-op) so the
  /// shrinker may remove kills and rejoins independently. Every per-layer
  /// seed derives from `seed` + the layer id, never from event positions.
  void apply(cgm::MachineConfig& cfg) const;

  /// True when any event survives (an empty plan is the clean run).
  bool enabled() const { return !events.empty(); }

  /// Repro artifact: {"seed": ..., "events": [{...}]}. parse_json accepts
  /// exactly what to_json emits (field order free, whitespace free) and
  /// throws IoError(kConfig) on malformed input.
  std::string to_json() const;
  static ChaosPlan parse_json(const std::string& text);

  /// Draw a plan from one seed: event count in [1, shape.max_events], kinds
  /// uniform over the surfaces the shape allows, parameters uniform in the
  /// shape's ranges. Pure function of (seed, shape).
  static ChaosPlan generate(std::uint64_t seed, const PlanShape& shape);
};

}  // namespace emcgm::chaos
