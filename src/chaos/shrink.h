// Delta-debugging plan minimization (ddmin over the event list).
//
// A failing fuzz plan often carries a handful of events that have nothing to
// do with the failure. shrink() reduces it to a 1-minimal plan — removing
// any single remaining event no longer reproduces — by Zeller's ddmin over
// complements: partition the event list into n chunks, try dropping each
// chunk, keep any reduction that still fails, refine the granularity when
// none does. Removal is sound because per-layer fault schedules are seeded
// from the *plan* seed, never from event positions (see plan.h): dropping
// one event does not change when the survivors fire.
//
// The caller supplies the failure predicate — typically "run_plan() on this
// machine shape reports the same finding" — so the same machinery shrinks
// divergences, invariant violations, and untyped failures alike.
#pragma once

#include <cstdint>
#include <functional>

#include "chaos/plan.h"

namespace emcgm::chaos {

/// Returns true when `plan` still reproduces the failure being minimized.
/// Must be deterministic (a flaky predicate makes ddmin thrash).
using FailPredicate = std::function<bool(const ChaosPlan&)>;

struct ShrinkResult {
  ChaosPlan plan;           ///< 1-minimal failing plan (or the budget's best)
  std::uint32_t tests = 0;  ///< predicate evaluations spent
};

/// Minimize `failing` under `still_fails`. `failing` itself must satisfy the
/// predicate (throws IoError(kConfig) otherwise — minimizing a non-failure
/// is a harness bug, not a shrink). Stops early after `max_tests` predicate
/// calls and returns the smallest failing plan found so far.
ShrinkResult shrink(const ChaosPlan& failing, const FailPredicate& still_fails,
                    std::uint32_t max_tests = 512);

}  // namespace emcgm::chaos
