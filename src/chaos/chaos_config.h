// Chaos-harness configuration and the runtime invariant taxonomy.
//
// This header is deliberately dependency-light (like obs/obs_config.h): it is
// included by cgm/config.h so every engine carries a ChaosConfig, while the
// heavyweight chaos machinery (plan composition, fuzzing, shrinking) lives in
// chaos/plan.h and friends and is only pulled in by code that drives it.
//
// The invariant layer (cfg.chaos.invariants) turns properties that six PRs of
// fault-tolerance work argued for in comments into machine-checked runtime
// assertions. Every check is behind a single `if (cfg.chaos.invariants)` on a
// cold path (superstep barriers, membership changes, commits), so a disabled
// run pays one predictable branch per barrier and allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace emcgm::chaos {

/// Which machine-checked property a violation report refers to.
enum class Invariant {
  kWatchdog,        ///< superstep rounds stopped making forward progress
  kSpread,          ///< store-group spread over live hosts exceeded 1
  kExactlyOnce,     ///< network delivered more/fewer crossing messages
                    ///< than the hosts posted
  kCommitMonotonic, ///< a commit boundary went backwards (round, phase)
  kExecutorDrain,   ///< async I/O still in flight at a superstep barrier
};

inline const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kWatchdog:
      return "watchdog";
    case Invariant::kSpread:
      return "spread";
    case Invariant::kExactlyOnce:
      return "exactly-once";
    case Invariant::kCommitMonotonic:
      return "commit-monotonic";
    case Invariant::kExecutorDrain:
      return "executor-drain";
  }
  return "unknown";
}

/// A runtime invariant tripped. Distinct from IoError on purpose: a typed
/// fault is the simulated machine failing as designed; an InvariantViolation
/// is the *engine* caught breaking its own guarantees — exactly what the
/// chaos fuzzer exists to surface. Catching emcgm::Error still catches these.
class InvariantViolation : public Error {
 public:
  InvariantViolation(Invariant which, const std::string& what)
      : Error(std::string("invariant violation [") + to_string(which) +
              "]: " + what),
        which_(which) {}

  Invariant which() const { return which_; }

 private:
  Invariant which_;
};

/// Chaos knobs carried by cgm::MachineConfig (cfg.chaos).
struct ChaosConfig {
  /// Arm the runtime invariant layer: no-progress watchdog, store-group
  /// spread <= 1, exactly-once delivery accounting, commit-boundary
  /// monotonicity, executor-drain-at-barrier. Off by default; outputs and
  /// every stat counter are bit-identical either way.
  bool invariants = false;

  /// No-progress watchdog threshold: physical supersteps the engine may run
  /// without the (round, phase) high-water mark advancing before the
  /// watchdog declares a livelock. Fail-over and rejoin replays legitimately
  /// re-run committed rounds, so the bound must exceed the longest replay
  /// chain a membership schedule can induce; 64 is far above anything a
  /// p <= 64 machine can produce while still catching a genuine stall in
  /// bounded time. Only consulted when `invariants` is on.
  std::uint32_t watchdog_steps = 64;

  /// Per-disk byte quota applied to every real processor's disks (0 =
  /// unlimited). A materializing write past the quota raises a typed
  /// IoError(kNoSpace); with checkpointing on, the run aborts gracefully to
  /// the last committed boundary and EmEngine::resume() replays to
  /// bit-identical output once the quota is raised or cleared
  /// (EmEngine::set_disk_quota_bytes). Counts physical bytes on the media,
  /// checksum envelope included.
  std::uint64_t disk_quota_bytes = 0;

  /// Per-real-processor quota overrides. Empty = every processor uses
  /// `disk_quota_bytes`; otherwise exactly p entries (0 entries mean
  /// unlimited for that processor). This is how a chaos plan fills up *one*
  /// machine's disks without touching the others.
  std::vector<std::uint64_t> disk_quota_per_proc{};

  /// Commit-record version the engine writes: 0 = current (v3). Tests pin 2
  /// to exercise the upgrade path — a v2 (pre-membership-epoch) record
  /// restores as epoch 0, whose fault-coin streams are bit-identical to the
  /// pre-epoch streams. Reading always accepts v2 and v3.
  std::uint32_t ckpt_write_version = 0;
};

}  // namespace emcgm::chaos
