#include "chaos/shrink.h"

#include <algorithm>

#include "util/error.h"

namespace emcgm::chaos {

namespace {

// Event list minus the chunk [chunk * len, (chunk + 1) * len).
std::vector<ChaosEvent> without_chunk(const std::vector<ChaosEvent>& events,
                                      std::size_t chunk, std::size_t len) {
  std::vector<ChaosEvent> kept;
  kept.reserve(events.size());
  const std::size_t lo = chunk * len;
  const std::size_t hi = std::min(events.size(), lo + len);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i < lo || i >= hi) kept.push_back(events[i]);
  }
  return kept;
}

}  // namespace

ShrinkResult shrink(const ChaosPlan& failing, const FailPredicate& still_fails,
                    std::uint32_t max_tests) {
  ShrinkResult res;
  res.plan = failing;
  auto check = [&](const ChaosPlan& candidate) {
    ++res.tests;
    return still_fails(candidate);
  };
  if (!check(failing)) {
    throw IoError(IoErrorKind::kConfig,
                  "shrink() called with a plan that does not fail — the"
                  " predicate must hold on the input");
  }

  std::size_t n = 2;  // granularity: chunks the current list is split into
  while (res.plan.events.size() >= 2 && res.tests < max_tests) {
    const std::size_t size = res.plan.events.size();
    n = std::min(n, size);
    const std::size_t len = (size + n - 1) / n;  // ceil
    bool reduced = false;
    for (std::size_t c = 0; c * len < size && res.tests < max_tests; ++c) {
      ChaosPlan candidate;
      candidate.seed = res.plan.seed;
      candidate.events = without_chunk(res.plan.events, c, len);
      if (candidate.events.size() == size) continue;
      if (check(candidate)) {
        // The complement still fails: keep it, coarsen one step (ddmin's
        // "reduce to complement" rule), restart the scan.
        res.plan = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= size) break;  // single-event granularity exhausted: 1-minimal
      n = std::min(n * 2, size);
    }
  }
  return res;
}

}  // namespace emcgm::chaos
