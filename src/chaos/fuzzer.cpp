#include "chaos/fuzzer.h"

#include <sstream>

#include "algo/sort.h"
#include "chaos/chaos_config.h"
#include "emcgm/em_engine.h"
#include "pdm/fault.h"
#include "util/math.h"
#include "util/rng.h"

namespace emcgm::chaos {

namespace {

std::vector<cgm::PartitionSet> sort_inputs(const FuzzMachine& m) {
  Rng rng(12345);
  std::vector<std::uint64_t> keys(m.keys);
  for (auto& k : keys) k = rng.next_below(1000);  // duplicate-heavy
  cgm::PartitionSet set;
  set.parts.resize(m.v);
  for (std::uint32_t j = 0; j < m.v; ++j) {
    const auto begin = chunk_begin(keys.size(), m.v, j);
    const auto count = chunk_size(keys.size(), m.v, j);
    std::vector<std::uint64_t> part(keys.begin() + begin,
                                    keys.begin() + begin + count);
    set.parts[j] = vec_to_bytes(part);
  }
  std::vector<cgm::PartitionSet> inputs;
  inputs.push_back(std::move(set));
  return inputs;
}

cgm::MachineConfig base_config(const FuzzMachine& m) {
  cgm::MachineConfig cfg;
  cfg.v = m.v;
  cfg.p = m.p;
  cfg.disk.num_disks = m.num_disks;
  cfg.disk.block_bytes = m.block_bytes;
  cfg.io_threads = m.io_threads;
  cfg.use_threads = m.use_threads;
  cfg.layout = cgm::MsgLayout::kChained;
  cfg.checkpointing = true;
  cfg.checksums = true;
  cfg.backend = m.backend;
  cfg.file_dir = m.file_dir;
  cfg.seed = 7;
  // Absorb transient faults instead of dying on them, and never sleep for
  // real — fuzz throughput over backoff realism.
  cfg.retry.max_attempts = 50;
  cfg.retry.sleep = [](std::uint64_t) {};
  if (m.p > 1) cfg.net.enabled = true;
  return cfg;
}

bool same_outputs(const std::vector<cgm::PartitionSet>& a,
                  const std::vector<cgm::PartitionSet>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].parts != b[k].parts) return false;
  }
  return true;
}

FuzzOutcome classify_outputs(const std::vector<cgm::PartitionSet>& got,
                             const std::vector<cgm::PartitionSet>& ref,
                             FuzzStatus ok_status, const ChaosPlan& plan) {
  FuzzOutcome out;
  out.plan = plan;
  if (same_outputs(got, ref)) {
    out.status = ok_status;
  } else {
    out.status = FuzzStatus::kDivergence;
    out.detail = "completed run's outputs differ from the clean reference";
  }
  return out;
}

}  // namespace

const char* to_string(FuzzStatus s) {
  switch (s) {
    case FuzzStatus::kIdentical:        return "identical";
    case FuzzStatus::kResumedIdentical: return "resumed-identical";
    case FuzzStatus::kTypedFailure:     return "typed-failure";
    case FuzzStatus::kDivergence:       return "DIVERGENCE";
    case FuzzStatus::kInvariant:        return "INVARIANT-VIOLATION";
    case FuzzStatus::kUntypedFailure:   return "UNTYPED-FAILURE";
  }
  return "unknown";
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << runs << " plans:";
  for (int s = 0; s < 6; ++s) {
    if (by_status[s] == 0) continue;
    os << " " << to_string(static_cast<FuzzStatus>(s)) << "="
       << by_status[s];
  }
  return os.str();
}

std::vector<cgm::PartitionSet> run_reference(const FuzzMachine& machine) {
  algo::SampleSortProgram<std::uint64_t> prog;
  em::EmEngine engine(base_config(machine));
  return engine.run(prog, sort_inputs(machine));
}

FuzzOutcome run_plan(const ChaosPlan& plan, const FuzzMachine& machine,
                     const std::vector<cgm::PartitionSet>& reference) {
  algo::SampleSortProgram<std::uint64_t> prog;
  cgm::MachineConfig cfg = base_config(machine);
  try {
    plan.apply(cfg);
    cfg.chaos.invariants = true;
    em::EmEngine engine(cfg);
    try {
      const auto got = engine.run(prog, sort_inputs(machine));
      return classify_outputs(got, reference, FuzzStatus::kIdentical, plan);
    } catch (const InvariantViolation& iv) {
      return FuzzOutcome{FuzzStatus::kInvariant, iv.what(), plan};
    } catch (const Error& e) {
      // Typed abort. "Repair the machine" — lift every capacity quota,
      // disarm the fault injectors — and attempt the recovery path the
      // checkpoint protocol promises: one resume() to bit-identical output.
      const std::string first = e.what();
      for (std::uint32_t r = 0; r < cfg.p; ++r) {
        engine.set_disk_quota_bytes(r, 0);
      }
      engine.disarm_faults();
      if (!engine.has_checkpoint()) {
        return FuzzOutcome{FuzzStatus::kTypedFailure, first, plan};
      }
      try {
        const auto got = engine.resume(prog);
        return classify_outputs(got, reference,
                                FuzzStatus::kResumedIdentical, plan);
      } catch (const InvariantViolation& iv) {
        return FuzzOutcome{FuzzStatus::kInvariant, iv.what(), plan};
      } catch (const Error& e2) {
        // Silent corruption already on disk (torn write / bit flip under a
        // committed block) can legitimately survive a replay; a typed
        // detection is the contract.
        return FuzzOutcome{FuzzStatus::kTypedFailure,
                           first + "; resume: " + e2.what(), plan};
      }
    }
  } catch (const Error& e) {
    // Construction / config rejection — typed by definition.
    return FuzzOutcome{FuzzStatus::kTypedFailure, e.what(), plan};
  } catch (const std::exception& e) {
    return FuzzOutcome{FuzzStatus::kUntypedFailure, e.what(), plan};
  }
}

FuzzReport fuzz(std::uint64_t seed, std::uint32_t n_plans,
                const FuzzMachine& machine, const PlanShape& shape) {
  const auto reference = run_reference(machine);
  FuzzReport report;
  for (std::uint32_t i = 0; i < n_plans; ++i) {
    const std::uint64_t plan_seed =
        pdm::fault_mix(seed ^ (0xC2B2AE3D27D4EB4FULL * (i + 1)));
    const ChaosPlan plan =
        ChaosPlan::generate(plan_seed == 0 ? 1 : plan_seed, shape);
    FuzzOutcome out = run_plan(plan, machine, reference);
    ++report.runs;
    ++report.by_status[static_cast<int>(out.status)];
    if (!fuzz_ok(out.status)) report.findings.push_back(std::move(out));
  }
  return report;
}

}  // namespace emcgm::chaos
