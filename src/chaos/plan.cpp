#include "chaos/plan.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "pdm/fault.h"
#include "routing/schedule.h"

namespace emcgm::chaos {

namespace {

// Per-layer seed derivation: the plan seed tagged with a layer id, run
// through the shared fault clock's mixer. Event positions never enter, so a
// shrunk plan's surviving events fire exactly when they did in the original.
constexpr std::uint64_t kDiskLayer = 0x6469736bULL;    // "disk"
constexpr std::uint64_t kLinkLayer = 0x6c696e6bULL;    // "link"
constexpr std::uint64_t kDrawStream = 0x63616f73ULL;   // "caos"

std::uint64_t layer_seed(std::uint64_t seed, std::uint64_t layer,
                         std::uint64_t sub) {
  return pdm::fault_mix(seed ^ (layer * 0x9E3779B97F4A7C15ULL) ^ sub);
}

bool is_disk_kind(ChaosEvent::Kind k) {
  using K = ChaosEvent::Kind;
  return k == K::kTransientRead || k == K::kTransientWrite ||
         k == K::kTornWrite || k == K::kBitflip || k == K::kDiskCrash;
}

bool is_link_kind(ChaosEvent::Kind k) {
  using K = ChaosEvent::Kind;
  return k == K::kLinkDrop || k == K::kLinkDup || k == K::kLinkCorrupt ||
         k == K::kLinkReorder || k == K::kLinkDelay;
}

constexpr ChaosEvent::Kind kAllKinds[] = {
    ChaosEvent::Kind::kTransientRead, ChaosEvent::Kind::kTransientWrite,
    ChaosEvent::Kind::kTornWrite,     ChaosEvent::Kind::kBitflip,
    ChaosEvent::Kind::kDiskCrash,     ChaosEvent::Kind::kLinkDrop,
    ChaosEvent::Kind::kLinkDup,       ChaosEvent::Kind::kLinkCorrupt,
    ChaosEvent::Kind::kLinkReorder,   ChaosEvent::Kind::kLinkDelay,
    ChaosEvent::Kind::kKill,          ChaosEvent::Kind::kRejoin,
    ChaosEvent::Kind::kDiskQuota,     ChaosEvent::Kind::kSchedule,
};

}  // namespace

const char* to_string(ChaosEvent::Kind kind) {
  using K = ChaosEvent::Kind;
  switch (kind) {
    case K::kTransientRead:  return "transient-read";
    case K::kTransientWrite: return "transient-write";
    case K::kTornWrite:      return "torn-write";
    case K::kBitflip:        return "bitflip";
    case K::kDiskCrash:      return "disk-crash";
    case K::kLinkDrop:       return "link-drop";
    case K::kLinkDup:        return "link-dup";
    case K::kLinkCorrupt:    return "link-corrupt";
    case K::kLinkReorder:    return "link-reorder";
    case K::kLinkDelay:      return "link-delay";
    case K::kKill:           return "kill";
    case K::kRejoin:         return "rejoin";
    case K::kDiskQuota:      return "disk-quota";
    case K::kSchedule:       return "schedule";
  }
  return "unknown";
}

// ------------------------------------------------------------------ apply --

void ChaosPlan::apply(cgm::MachineConfig& cfg) const {
  const std::uint32_t p = cfg.p;
  for (const ChaosEvent& e : events) {
    const bool machine_wide =
        is_link_kind(e.kind) || e.kind == ChaosEvent::Kind::kSchedule;
    if (!machine_wide && e.proc >= p) {
      throw IoError(IoErrorKind::kConfig,
                    std::string("chaos event '") + to_string(e.kind) +
                        "' names real processor " + std::to_string(e.proc) +
                        " on a p=" + std::to_string(p) + " machine");
    }
    if (e.kind == ChaosEvent::Kind::kSchedule &&
        e.value > static_cast<std::uint64_t>(
                      routing::ScheduleKind::kHyperSystolic)) {
      throw IoError(IoErrorKind::kConfig,
                    "chaos event 'schedule' names collective schedule index " +
                        std::to_string(e.value) + "; known kinds are 0..3");
    }
  }

  // Disk fault surface: one FaultPlan per real processor, each with its own
  // derived seed, so per-disk coin streams stay independent across procs.
  const bool any_disk =
      std::any_of(events.begin(), events.end(),
                  [](const ChaosEvent& e) { return is_disk_kind(e.kind); });
  if (any_disk) {
    if (cfg.fault_per_proc.empty()) cfg.fault_per_proc.assign(p, cfg.fault);
    for (std::uint32_t r = 0; r < p; ++r) {
      cfg.fault_per_proc[r].seed = layer_seed(seed, kDiskLayer, r);
    }
    for (const ChaosEvent& e : events) {
      if (!is_disk_kind(e.kind)) continue;
      pdm::FaultPlan& f = cfg.fault_per_proc[e.proc];
      switch (e.kind) {
        case ChaosEvent::Kind::kTransientRead:
          f.transient_read_at = e.value;
          break;
        case ChaosEvent::Kind::kTransientWrite:
          f.transient_write_at = e.value;
          break;
        case ChaosEvent::Kind::kTornWrite:
          f.torn_write_at = e.value;
          break;
        case ChaosEvent::Kind::kBitflip:
          f.bitflip_write_at = e.value;
          break;
        case ChaosEvent::Kind::kDiskCrash:
          f.crash_after_ops = e.value;
          break;
        default:
          break;
      }
    }
  }

  // Capacity quotas live in the chaos config itself.
  for (const ChaosEvent& e : events) {
    if (e.kind != ChaosEvent::Kind::kDiskQuota) continue;
    if (cfg.chaos.disk_quota_per_proc.empty()) {
      cfg.chaos.disk_quota_per_proc.assign(p, cfg.chaos.disk_quota_bytes);
    }
    cfg.chaos.disk_quota_per_proc[e.proc] = e.value;
  }

  // Network surfaces only exist on a multi-machine config; on p == 1 the
  // remaining event classes are structurally inert and simply dropped.
  if (p < 2) return;

  bool any_net = false;
  for (const ChaosEvent& e : events) {
    if (!is_link_kind(e.kind) && e.kind != ChaosEvent::Kind::kKill &&
        e.kind != ChaosEvent::Kind::kRejoin &&
        e.kind != ChaosEvent::Kind::kSchedule) {
      continue;
    }
    any_net = true;
    net::NetFaultPlan& nf = cfg.net.fault;
    switch (e.kind) {
      case ChaosEvent::Kind::kLinkDrop:
        nf.drop_prob = std::max(nf.drop_prob, e.prob);
        break;
      case ChaosEvent::Kind::kLinkDup:
        nf.dup_prob = std::max(nf.dup_prob, e.prob);
        break;
      case ChaosEvent::Kind::kLinkCorrupt:
        nf.corrupt_prob = std::max(nf.corrupt_prob, e.prob);
        break;
      case ChaosEvent::Kind::kLinkReorder:
        nf.reorder_prob = std::max(nf.reorder_prob, e.prob);
        break;
      case ChaosEvent::Kind::kLinkDelay:
        nf.delay_prob = std::max(nf.delay_prob, e.prob);
        break;
      case ChaosEvent::Kind::kKill:
        nf.fail_stops.push_back(net::NodeEvent{e.proc, e.value});
        cfg.net.failover = true;
        cfg.checkpointing = true;
        break;
      case ChaosEvent::Kind::kRejoin: {
        // Reboot of a machine the plan never killed earlier: a no-op, not
        // an error — the shrinker must be free to drop kills and rejoins
        // independently without producing an invalid config.
        bool killed_before = cfg.net.fault.fail_stop_proc == e.proc &&
                             cfg.net.fault.fail_stop_at_step < e.value;
        for (const ChaosEvent& k : events) {
          killed_before = killed_before ||
                          (k.kind == ChaosEvent::Kind::kKill &&
                           k.proc == e.proc && k.value < e.value);
        }
        if (killed_before) {
          nf.rejoins.push_back(net::NodeEvent{e.proc, e.value});
          cfg.net.rejoin = true;
          cfg.net.failover = true;
          cfg.checkpointing = true;
        }
        break;
      }
      case ChaosEvent::Kind::kSchedule:
        // Non-direct routing rides the simulated network, so a schedule
        // event flips the net surface on like the link kinds do. Later
        // events win, matching how a JSON repro reads top to bottom.
        cfg.net.schedule = static_cast<routing::ScheduleKind>(e.value);
        break;
      default:
        break;
    }
  }
  if (any_net) {
    cfg.net.enabled = true;
    cfg.net.fault.seed = layer_seed(seed, kLinkLayer, 0);
  }
}

// ------------------------------------------------------------------- JSON --

std::string ChaosPlan::to_json() const {
  std::ostringstream os;
  os.precision(17);  // doubles round-trip exactly
  os << "{\n  \"seed\": " << seed << ",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChaosEvent& e = events[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"kind\": \"" << to_string(e.kind) << "\", \"proc\": " << e.proc
       << ", \"value\": " << e.value << ", \"prob\": " << e.prob << "}";
  }
  os << (events.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

namespace {

// Minimal cursor parser for exactly the plan schema: objects, arrays,
// strings without escapes, and numbers. Anything else is kConfig.
struct JsonCursor {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const std::string& what) const {
    throw IoError(IoErrorKind::kConfig, "chaos plan JSON: " + what);
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  void expect(char c) {
    skip_ws();
    if (p >= end || *p != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++p;
  }
  std::string parse_string() {
    expect('"');
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') fail("escape sequences unsupported");
      s += *p++;
    }
    expect('"');
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double d = std::strtod(p, &after);
    if (after == p) fail("expected a number");
    p = after;
    return d;
  }
};

}  // namespace

ChaosPlan ChaosPlan::parse_json(const std::string& text) {
  JsonCursor c{text.data(), text.data() + text.size()};
  ChaosPlan plan;
  plan.seed = 0;
  c.expect('{');
  bool first_key = true;
  while (!c.peek('}')) {
    if (!first_key) c.expect(',');
    first_key = false;
    const std::string key = c.parse_string();
    c.expect(':');
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(c.parse_number());
    } else if (key == "events") {
      c.expect('[');
      while (!c.peek(']')) {
        if (!plan.events.empty()) c.expect(',');
        c.expect('{');
        ChaosEvent e;
        bool have_kind = false;
        bool first = true;
        while (!c.peek('}')) {
          if (!first) c.expect(',');
          first = false;
          const std::string field = c.parse_string();
          c.expect(':');
          if (field == "kind") {
            const std::string name = c.parse_string();
            have_kind = false;
            for (ChaosEvent::Kind k : kAllKinds) {
              if (name == to_string(k)) {
                e.kind = k;
                have_kind = true;
              }
            }
            if (!have_kind) c.fail("unknown event kind '" + name + "'");
          } else if (field == "proc") {
            e.proc = static_cast<std::uint32_t>(c.parse_number());
          } else if (field == "value") {
            e.value = static_cast<std::uint64_t>(c.parse_number());
          } else if (field == "prob") {
            e.prob = c.parse_number();
          } else {
            c.fail("unknown event field '" + field + "'");
          }
        }
        c.expect('}');
        if (!have_kind) c.fail("event without a kind");
        plan.events.push_back(e);
      }
      c.expect(']');
    } else {
      c.fail("unknown key '" + key + "'");
    }
  }
  c.expect('}');
  if (plan.seed == 0) c.fail("missing or zero seed");
  return plan;
}

// --------------------------------------------------------------- generate --

ChaosPlan ChaosPlan::generate(std::uint64_t seed, const PlanShape& shape) {
  ChaosPlan plan;
  plan.seed = seed == 0 ? 1 : seed;

  // SplitMix-style draw stream, independent of the per-layer fault streams
  // the plan seeds at apply() time.
  std::uint64_t state = layer_seed(plan.seed, kDrawStream, 0);
  auto next = [&state]() {
    state += 0x9E3779B97F4A7C15ULL;
    return pdm::fault_mix(state);
  };
  auto below = [&next](std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  };

  using K = ChaosEvent::Kind;
  std::vector<K> kinds = {K::kTransientRead, K::kTransientWrite,
                          K::kTornWrite, K::kBitflip};
  if (shape.allow_disk_crash) kinds.push_back(K::kDiskCrash);
  if (shape.quota_max_bytes >= shape.quota_min_bytes &&
      shape.quota_max_bytes > 0) {
    kinds.push_back(K::kDiskQuota);
  }
  if (shape.p >= 2) {
    kinds.insert(kinds.end(), {K::kLinkDrop, K::kLinkDup, K::kLinkCorrupt,
                               K::kLinkReorder, K::kLinkDelay});
    if (shape.allow_kill) kinds.push_back(K::kKill);
    if (shape.allow_rejoin) kinds.push_back(K::kRejoin);
    if (shape.allow_schedule) kinds.push_back(K::kSchedule);
  }

  const std::uint64_t draws = 1 + below(std::max(1u, shape.max_events));
  for (std::uint64_t i = 0; i < draws; ++i) {
    ChaosEvent e;
    e.kind = kinds[below(kinds.size())];
    switch (e.kind) {
      case K::kTransientRead:
      case K::kTransientWrite:
      case K::kTornWrite:
      case K::kBitflip:
        e.proc = static_cast<std::uint32_t>(below(shape.p));
        e.value = 1 + below(shape.max_disk_op);
        break;
      case K::kDiskCrash:
        e.proc = static_cast<std::uint32_t>(below(shape.p));
        e.value = 1 + below(shape.max_disk_op * 2);
        break;
      case K::kLinkDrop:
      case K::kLinkDup:
      case K::kLinkCorrupt:
      case K::kLinkReorder:
      case K::kLinkDelay:
        // Quantized so the JSON artifact reads naturally; any double
        // round-trips through to_json regardless.
        e.prob = static_cast<double>(1 + below(200)) / 1000.0 *
                 (shape.max_prob * 5.0);
        e.prob = std::min(e.prob, shape.max_prob);
        break;
      case K::kKill:
        e.proc = static_cast<std::uint32_t>(below(shape.p));
        e.value = 1 + below(shape.max_step);
        break;
      case K::kRejoin: {
        // Drawn as a kill + reboot pair so the rejoin always has a
        // preceding death; the shrinker may later drop either half (an
        // orphaned rejoin is a no-op under apply()).
        const auto proc = static_cast<std::uint32_t>(below(shape.p));
        const std::uint64_t kill_step = 1 + below(shape.max_step);
        plan.events.push_back(ChaosEvent{K::kKill, proc, kill_step, 0.0});
        e.proc = proc;
        e.value = kill_step + 1 + below(3);
        break;
      }
      case K::kDiskQuota:
        e.proc = static_cast<std::uint32_t>(below(shape.p));
        e.value = shape.quota_min_bytes +
                  below(shape.quota_max_bytes - shape.quota_min_bytes + 1);
        break;
      case K::kSchedule:
        e.value = below(4);  // uniform over the ScheduleKind indices
        break;
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace emcgm::chaos
