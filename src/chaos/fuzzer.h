// Seeded chaos fuzzer: run N generated plans against a clean reference and
// demand that every run is either bit-identical or a *typed*, recoverable
// failure.
//
// The contract under test is the determinism backbone the repo is built on:
// whatever faults fire, a run that completes — directly, in degraded mode
// after fail-over, or via resume() after an abort — must produce the exact
// bytes of the fault-free run; a run that cannot complete must fail with a
// typed error (IoError / emcgm::Error), never a wrong answer, a hang, or an
// untyped exception. The runtime invariant layer (cfg.chaos.invariants) is
// armed on every fuzz run, so an engine that "succeeds" by breaking its own
// guarantees is caught as an InvariantViolation, which the fuzzer counts as
// a finding.
//
// A failing plan is a self-contained repro: its JSON (ChaosPlan::to_json)
// replays the exact schedule, and shrink.h minimizes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgm/engine.h"
#include "chaos/plan.h"
#include "pdm/backend.h"

namespace emcgm::chaos {

/// Machine shape one fuzz campaign runs on. The workload is the sample sort
/// (the paper's Fig. 5 row A1 algorithm) over a duplicate-heavy keyed input
/// — multi-round, message-dense, and bit-identity-checked end to end.
struct FuzzMachine {
  std::uint32_t v = 8;          ///< virtual processors
  std::uint32_t p = 2;          ///< real processors
  std::uint32_t num_disks = 4;  ///< D per real processor
  std::size_t block_bytes = 128;
  std::uint32_t io_threads = 0;  ///< async executor workers (0 = serial)
  bool use_threads = false;      ///< one driver thread per host
  std::size_t keys = 400;        ///< input size of the sort workload
  pdm::BackendKind backend = pdm::BackendKind::kMemory;
  std::string file_dir;  ///< scratch root for BackendKind::kFile
};

/// What one plan did, most benign first.
enum class FuzzStatus {
  kIdentical,        ///< ran to completion, output bit-identical
  kResumedIdentical, ///< aborted typed, resume() completed bit-identical
  kTypedFailure,     ///< aborted with a typed error; no wrong answer escaped
  kDivergence,       ///< completed with output != reference  (FINDING)
  kInvariant,        ///< runtime invariant violation          (FINDING)
  kUntypedFailure,   ///< non-typed exception escaped          (FINDING)
};

const char* to_string(FuzzStatus s);

/// True for the outcomes the robustness contract allows.
inline bool fuzz_ok(FuzzStatus s) {
  return s == FuzzStatus::kIdentical || s == FuzzStatus::kResumedIdentical ||
         s == FuzzStatus::kTypedFailure;
}

struct FuzzOutcome {
  FuzzStatus status = FuzzStatus::kIdentical;
  std::string detail;  ///< error text of the abort / finding, if any
  ChaosPlan plan;      ///< the schedule that produced it (repro artifact)
};

struct FuzzReport {
  std::uint64_t runs = 0;
  std::uint64_t by_status[6] = {};  ///< indexed by FuzzStatus
  std::vector<FuzzOutcome> findings;  ///< every !fuzz_ok outcome, in order

  bool ok() const { return findings.empty(); }
  std::string summary() const;
};

/// Execute one plan on one machine shape and classify the outcome against
/// `reference` (the clean run's outputs, from run_reference()). Arms the
/// invariant layer; on a typed abort, lifts quotas, disarms the injectors
/// and attempts one resume().
FuzzOutcome run_plan(const ChaosPlan& plan, const FuzzMachine& machine,
                     const std::vector<cgm::PartitionSet>& reference);

/// The clean (fault-free) run of the fuzz workload on `machine`.
std::vector<cgm::PartitionSet> run_reference(const FuzzMachine& machine);

/// Run `n_plans` plans generated from `seed` (plan i uses a seed derived
/// from (seed, i)) on one machine shape. `shape` bounds what the plans draw.
FuzzReport fuzz(std::uint64_t seed, std::uint32_t n_plans,
                const FuzzMachine& machine, const PlanShape& shape);

}  // namespace emcgm::chaos
