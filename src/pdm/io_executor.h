// Asynchronous per-disk I/O executor: the engine that makes a "parallel I/O"
// actually parallel on the wall clock.
//
// The PDM cost rule says one parallel operation moves up to D blocks, one
// per disk, at unit cost — but a serial loop over the blocks makes the wall
// clock D× a single-block latency. The executor runs W = min(io_threads, D)
// worker threads; worker w owns disks {d : d mod W == w} and drains one FIFO
// submission queue per worker. Because DiskArray's occupancy mask already
// guarantees that one operation never names a disk twice, and each disk's
// jobs execute in submission order, per-disk timelines are
// schedule-independent: read-after-write on a disk is ordered by the FIFO,
// and the fault injector's per-disk coin streams (fault.h) see the same
// per-disk op sequence no matter how the workers interleave.
//
// Determinism contract (DESIGN.md §12):
//   * submission order defines everything observable — op-level IoStats are
//     applied at *reap* time in ascending op order, so counters are
//     bit-identical to the serial path;
//   * errors are re-raised canonically: the failure with the smallest
//     (op sequence, slot index) wins, regardless of which worker hit an
//     error first on the wall clock; ops submitted after the failed one are
//     drained but not counted, matching the serial path (which would never
//     have reached them);
//   * per-block counters (retries, corruptions) are per-disk shards owned by
//     the workers, folded into IoStats at reap — exact whenever the array is
//     quiescent (wait/drain returned).
//
// DiskArray is the only intended client; it keeps the serial path verbatim
// when io_threads == 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "pdm/backend.h"
#include "pdm/io_stats.h"

namespace emcgm::pdm {

struct ReadSlot;
struct WriteSlot;
struct RetryPolicy;

class IoExecutor {
 public:
  /// Called after every submit/completion with the number of in-flight
  /// blocks, under the completion lock (so calls are serialized, but they
  /// arrive from worker threads — the sink must be thread-safe).
  using DepthFn = std::function<void(std::uint64_t in_flight_blocks)>;
  using SleepFn = std::function<void(std::uint64_t delay_us)>;

  /// `backend` and `retry` outlive the executor. `checksums` mirrors
  /// DiskArrayOptions.checksums: workers then carry a per-worker physical
  /// scratch block and seal/unseal around the backend calls.
  IoExecutor(StorageBackend& backend, std::uint32_t num_workers,
             bool checksums, const RetryPolicy& retry, SleepFn sleep,
             DepthFn depth);
  ~IoExecutor();  ///< stops and joins workers; DiskArray drains first, so
                  ///< the queues are empty by the time this runs.

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  /// Enqueue one parallel read; buffers in `slots` must stay valid until the
  /// returned ticket is waited on. Returns the op's sequence number.
  std::uint64_t submit_read(std::span<const ReadSlot> slots);

  /// Enqueue one parallel write; payloads are *copied* into the jobs, so the
  /// caller's buffers may die immediately (write-behind).
  std::uint64_t submit_write(std::span<const WriteSlot> slots);

  /// Block until every op with sequence <= ticket has completed, then reap:
  /// apply op-level stats in ascending op order and fold the per-disk retry/
  /// corruption shards into `stats`. On error, drains everything in flight,
  /// then re-raises the canonically-first failure (clearing it).
  void wait(std::uint64_t ticket, IoStats& stats);

  /// wait() for everything submitted so far — the completion barrier.
  void drain(IoStats& stats);

  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Blocks submitted but not yet completed (snapshot under the completion
  /// lock; exact at quiesce points).
  std::uint64_t in_flight_blocks() const {
    std::lock_guard<std::mutex> lk(done_mu_);
    return pending_blocks_;
  }

 private:
  struct Op {
    std::uint64_t seq = 0;
    bool is_write = false;
    std::uint32_t blocks = 0;      ///< slots in the op
    bool full_stripe = false;      ///< op named every disk
    std::uint32_t pending = 0;     ///< jobs not yet completed (done_mu_)
    /// (slot index, error) for every failed job; canonical order at reap.
    std::vector<std::pair<std::uint32_t, std::exception_ptr>> errors;
  };

  struct Job {
    Op* op = nullptr;
    std::uint32_t slot = 0;
    std::uint32_t disk = 0;
    std::uint64_t track = 0;
    bool is_write = false;
    std::span<std::byte> out;        ///< read destination
    std::vector<std::byte> payload;  ///< owned write payload copy
  };

  struct WorkerQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
  };

  /// Per-disk block-level counter shards. Written only by the disk's owning
  /// worker; atomics because reaps may fold them while *other* ops are still
  /// executing on the disk.
  struct DiskCounters {
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> corruptions{0};
  };

  void run_worker(std::uint32_t w);
  void execute(Job& job, std::vector<std::byte>& scratch,
               DiskCounters& counters);
  bool prefix_complete_locked(std::uint64_t ticket) const;
  std::exception_ptr reap_locked(IoStats& stats, bool count_ops);
  void fold_shards_locked(IoStats& stats);
  void wait_and_reap(std::uint64_t ticket, IoStats& stats);

  StorageBackend& backend_;
  const bool checksums_;
  const RetryPolicy& retry_;
  SleepFn sleep_;
  DepthFn depth_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::unique_ptr<DiskCounters>> disk_counters_;  ///< per disk

  mutable std::mutex done_mu_;  ///< mutable: in_flight_blocks() is const
  std::condition_variable done_cv_;
  std::deque<std::unique_ptr<Op>> ops_;  ///< in-flight + unreaped, seq order
  std::uint64_t next_seq_ = 1;
  std::uint64_t pending_blocks_ = 0;
  std::uint64_t folded_retries_ = 0;  ///< shard totals already in stats
  std::uint64_t folded_corruptions_ = 0;
  std::atomic<bool> stop_{false};

  std::vector<std::thread> workers_;  ///< last member: joins before teardown
};

}  // namespace emcgm::pdm
