// Deterministic fault injection and retry policy for the PDM layer.
//
// FaultInjectingBackend decorates any StorageBackend and injects faults
// according to a seeded FaultPlan, reproducibly: the same plan over the same
// per-disk I/O sequences fires the same faults. Four fault classes:
//
//   * transient errors — IoError(kTransient) on selected block reads/writes;
//     the operation did not happen and a retry may succeed (bursts model
//     faults that persist across several attempts),
//   * torn writes     — silently persist only a prefix of the block; only a
//     checksumming reader notices, later,
//   * bit flips       — silently corrupt one payload byte at rest; ditto,
//   * fail-stop crash — after K parallel I/O operations every further
//     operation throws IoError(kCrash), modeling a machine that died
//     mid-run (recover via EmEngine::resume(); tests disarm() the injector
//     before resuming).
//
// Thread-ownership rule (DESIGN.md §12). Fault state is sharded per disk,
// exactly like the per-link streams of net::LinkFaultInjector: every
// per-event decision is a pure function fault_coin(seed, stream(class, disk),
// per-disk index), so the fault schedule of one disk depends only on that
// disk's own sequence of block reads and writes — never on how operations on
// *different* disks interleave. Under the async I/O executor
// (io_executor.h) each DiskState is written only by the one worker thread
// that owns the disk (worker w owns disks {d : d mod W == w}); with the
// executor off, everything belongs to the submitting thread. The cross-disk
// members are:
//   * armed_/crashed_ — atomic flags, the only cross-thread signals;
//   * parallel_ops_ and the crash trigger (note_parallel_op) — submitting
//     thread only;
//   * counters() — a quiesce-point merge over the per-disk shards; call it
//     only when no I/O is in flight (DiskArray::drain() first).
//
// RetryPolicy is how DiskArray reacts to transient faults: bounded attempts
// with exponential backoff through an injectable sleep hook, so tests can
// observe the backoff schedule without waiting it out.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pdm/backend.h"
#include "util/error.h"

namespace emcgm::pdm {

/// SplitMix64 finalizer: the shared deterministic "fault clock" primitive.
/// Both the disk fault injector and the network LinkFaultInjector derive
/// their per-event decisions from it, so a (seed, stream, index) triple
/// always yields the same outcome independent of call history.
std::uint64_t fault_mix(std::uint64_t x);

/// Deterministic per-event coin in [0, 1) for (seed, stream, index).
double fault_coin(std::uint64_t seed, std::uint64_t stream,
                  std::uint64_t index);

/// Deterministic fault schedule. Block-op triggers fire on the 1-based index
/// of the backend-level block read/write *on each disk* (retries re-count: a
/// retried block read is a new read op on its disk), so a trigger of N fires
/// on whichever disks reach their Nth op. 0 disables a trigger. Keying the
/// schedule per disk is what makes fault sequences independent of the
/// executor's thread schedule — see the ownership rule above.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< seeds the probabilistic coins below

  std::uint64_t transient_read_at = 0;   ///< Nth per-disk read fails
  std::uint64_t transient_write_at = 0;  ///< Nth per-disk write fails
  std::uint32_t transient_burst = 1;     ///< consecutive failures per trigger
  double transient_read_prob = 0.0;      ///< per-read seeded coin in [0,1)
  double transient_write_prob = 0.0;     ///< per-write seeded coin in [0,1)

  std::uint64_t torn_write_at = 0;    ///< Nth per-disk write keeps a prefix
  std::uint64_t bitflip_write_at = 0; ///< Nth per-disk write flips one byte

  std::uint64_t crash_after_ops = 0;  ///< fail-stop after K *parallel* I/Os

  bool enabled() const {
    return transient_read_at || transient_write_at || torn_write_at ||
           bitflip_write_at || crash_after_ops || transient_read_prob > 0 ||
           transient_write_prob > 0;
  }
};

/// What the injector actually did — assertable in tests.
struct FaultCounters {
  std::uint64_t transient_reads = 0;
  std::uint64_t transient_writes = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t bitflips = 0;
  std::uint64_t crashes = 0;  ///< ops refused after the fail-stop point

  FaultCounters& operator+=(const FaultCounters& o) {
    transient_reads += o.transient_reads;
    transient_writes += o.transient_writes;
    torn_writes += o.torn_writes;
    bitflips += o.bitflips;
    crashes += o.crashes;
    return *this;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

class FaultInjectingBackend final : public StorageBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<StorageBackend> inner, FaultPlan plan);

  void read_block(std::uint32_t disk, std::uint64_t track,
                  std::span<std::byte> out) override;
  void write_block(std::uint32_t disk, std::uint64_t track,
                   std::span<const std::byte> data) override;
  std::uint64_t tracks_used(std::uint32_t disk) const override;
  void note_parallel_op() override;
  void sync() override { inner_->sync(); }

  /// Capacity quotas are a property of the media, not the fault model:
  /// forward to the innermost store, which enforces them.
  void set_disk_quota_bytes(std::uint64_t quota) override {
    inner_->set_disk_quota_bytes(quota);
  }
  std::uint64_t disk_quota_bytes() const override {
    return inner_->disk_quota_bytes();
  }

  const FaultPlan& plan() const { return plan_; }

  /// Merged view of the per-disk counter shards (canonical disk order, then
  /// the crash-trigger shard). Quiesce-point only: the per-disk shards are
  /// owned by the executor workers while I/O is in flight.
  FaultCounters counters() const;

  /// Stop injecting any further faults (the crashed "machine" is rebooted);
  /// already-persisted silent corruption of course remains on disk.
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  StorageBackend& inner() { return *inner_; }

 private:
  /// Per-disk fault state, written only by the disk's owning thread.
  struct DiskState {
    std::uint64_t reads = 0;   ///< block reads seen on this disk
    std::uint64_t writes = 0;  ///< block writes seen on this disk
    std::uint32_t read_burst_left = 0;
    std::uint32_t write_burst_left = 0;
    FaultCounters counters;  ///< this disk's shard of counters()
  };

  bool fire_transient(std::uint64_t at, double prob, std::uint64_t stream,
                      std::uint64_t index) const;

  std::unique_ptr<StorageBackend> inner_;
  FaultPlan plan_;
  std::vector<DiskState> disks_;
  FaultCounters note_counters_;  ///< crash-trigger shard (submitting thread)
  std::atomic<bool> armed_ = true;
  std::atomic<bool> crashed_ = false;
  std::uint64_t parallel_ops_ = 0;  ///< parallel I/O ops seen (submit thread)
};

/// Bounded-retry policy with exponential backoff for transient faults.
/// Applied per block inside DiskArray::parallel_read/parallel_write.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;      ///< total attempts (1 = no retry)
  std::uint64_t base_backoff_us = 0;   ///< delay before the first retry
  double backoff_multiplier = 2.0;     ///< growth per further retry
  std::uint64_t max_backoff_us = 100000;  ///< backoff ceiling

  /// Injectable clock: called with the computed delay before each retry.
  /// Null = sleep for real (std::this_thread) when the delay is non-zero.
  /// Every backoff in the disk subsystem routes through this hook — the
  /// serial path and each async executor worker alike — so schedule
  /// perturbation in tests is complete. With io_threads > 0 the hook is
  /// called concurrently from the worker threads and must be thread-safe.
  std::function<void(std::uint64_t delay_us)> sleep;

  /// Backoff before retry number `retry` (1-based), in microseconds.
  std::uint64_t backoff_us(std::uint32_t retry) const {
    double d = static_cast<double>(base_backoff_us);
    for (std::uint32_t i = 1; i < retry; ++i) d *= backoff_multiplier;
    const double cap = static_cast<double>(max_backoff_us);
    return static_cast<std::uint64_t>(d < cap ? d : cap);
  }
};

}  // namespace emcgm::pdm
