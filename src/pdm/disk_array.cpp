#include "pdm/disk_array.h"

#include <chrono>
#include <thread>

namespace emcgm::pdm {

DiskArray::DiskArray(std::unique_ptr<StorageBackend> backend,
                     DiskArrayOptions opts)
    : backend_(std::move(backend)),
      opts_(std::move(opts)),
      geom_(backend_ ? backend_->geometry() : DiskGeometry{}) {
  EMCGM_CHECK(backend_ != nullptr);
  EMCGM_CHECK_MSG(num_disks() <= 64,
                  "disk-mask validation supports up to 64 disks");
  EMCGM_CHECK_MSG(opts_.retry.max_attempts >= 1,
                  "retry policy needs at least one attempt");
  if (opts_.checksums) {
    EMCGM_CHECK_MSG(geom_.block_bytes > kEnvelopeBytes + 8,
                    "physical block of " << geom_.block_bytes
                                         << " bytes too small for a "
                                         << kEnvelopeBytes
                                         << "-byte checksum envelope");
    geom_.block_bytes -= kEnvelopeBytes;  // expose the logical view
    scratch_.resize(backend_->geometry().block_bytes);
  }
}

namespace {

// Builds the per-op disk occupancy mask, throwing on a same-disk conflict.
template <typename Slot>
std::uint64_t occupancy_mask(std::span<const Slot> slots, std::uint32_t D) {
  std::uint64_t mask = 0;
  for (const auto& s : slots) {
    EMCGM_CHECK_MSG(s.addr.disk < D,
                    "disk index " << s.addr.disk << " out of range (D=" << D
                                  << ")");
    const std::uint64_t bit = 1ULL << s.addr.disk;
    EMCGM_CHECK_MSG((mask & bit) == 0,
                    "parallel op touches disk " << s.addr.disk << " twice");
    mask |= bit;
  }
  return mask;
}

}  // namespace

void DiskArray::backoff(std::uint32_t retry) const {
  const std::uint64_t us = opts_.retry.backoff_us(retry);
  if (opts_.retry.sleep) {
    opts_.retry.sleep(us);
  } else if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

void DiskArray::read_one(const ReadSlot& s) {
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      if (!opts_.checksums) {
        backend_->read_block(s.addr.disk, s.addr.track, s.out);
      } else {
        backend_->read_block(s.addr.disk, s.addr.track, scratch_);
        unseal_block(s.addr.disk, s.addr.track, scratch_, s.out);
      }
      return;
    } catch (const IoError& e) {
      if (e.kind() == IoErrorKind::kCorruption) {
        stats_.corruptions += 1;
        throw;
      }
      if (e.kind() != IoErrorKind::kTransient) throw;
      if (attempt >= opts_.retry.max_attempts) {
        throw IoError(IoErrorKind::kExhausted,
                      std::string("read gave up after ") +
                          std::to_string(attempt) + " attempts: " + e.what());
      }
      stats_.retries += 1;
      backoff(attempt);
    }
  }
}

void DiskArray::write_one(const WriteSlot& s) {
  std::span<const std::byte> phys = s.data;
  if (opts_.checksums) {
    seal_block(s.addr.disk, s.addr.track, s.data, scratch_);
    phys = scratch_;
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      backend_->write_block(s.addr.disk, s.addr.track, phys);
      return;
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kTransient) throw;
      if (attempt >= opts_.retry.max_attempts) {
        throw IoError(IoErrorKind::kExhausted,
                      std::string("write gave up after ") +
                          std::to_string(attempt) + " attempts: " + e.what());
      }
      stats_.retries += 1;
      backoff(attempt);
    }
  }
}

void DiskArray::parallel_read(std::span<const ReadSlot> slots) {
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel read");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel read of " << slots.size() << " blocks on "
                                      << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  backend_->note_parallel_op();
  for (const auto& s : slots) {
    EMCGM_CHECK(s.out.size() == block_bytes());
    read_one(s);
  }
  stats_.read_ops += 1;
  stats_.blocks_read += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
}

void DiskArray::parallel_write(std::span<const WriteSlot> slots) {
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel write");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel write of " << slots.size() << " blocks on "
                                       << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  backend_->note_parallel_op();
  for (const auto& s : slots) {
    EMCGM_CHECK(s.data.size() == block_bytes());
    write_one(s);
  }
  stats_.write_ops += 1;
  stats_.blocks_written += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
}

std::uint64_t DiskArray::tracks_used() const {
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < num_disks(); ++d) {
    total += backend_->tracks_used(d);
  }
  return total;
}

std::unique_ptr<DiskArray> make_disk_array(BackendKind kind,
                                           const DiskGeometry& logical,
                                           const std::string& file_dir,
                                           const DiskArrayOptions& opts,
                                           const FaultPlan& plan) {
  auto base =
      make_backend(kind, physical_geometry(logical, opts.checksums), file_dir);
  std::unique_ptr<StorageBackend> backend = std::move(base);
  if (plan.enabled()) {
    backend =
        std::make_unique<FaultInjectingBackend>(std::move(backend), plan);
  }
  return std::make_unique<DiskArray>(std::move(backend), opts);
}

}  // namespace emcgm::pdm
