#include "pdm/disk_array.h"

namespace emcgm::pdm {

DiskArray::DiskArray(std::unique_ptr<StorageBackend> backend)
    : backend_(std::move(backend)) {
  EMCGM_CHECK(backend_ != nullptr);
  EMCGM_CHECK_MSG(num_disks() <= 64,
                  "disk-mask validation supports up to 64 disks");
}

namespace {

// Builds the per-op disk occupancy mask, throwing on a same-disk conflict.
template <typename Slot>
std::uint64_t occupancy_mask(std::span<const Slot> slots, std::uint32_t D) {
  std::uint64_t mask = 0;
  for (const auto& s : slots) {
    EMCGM_CHECK_MSG(s.addr.disk < D,
                    "disk index " << s.addr.disk << " out of range (D=" << D
                                  << ")");
    const std::uint64_t bit = 1ULL << s.addr.disk;
    EMCGM_CHECK_MSG((mask & bit) == 0,
                    "parallel op touches disk " << s.addr.disk << " twice");
    mask |= bit;
  }
  return mask;
}

}  // namespace

void DiskArray::parallel_read(std::span<const ReadSlot> slots) {
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel read");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel read of " << slots.size() << " blocks on "
                                      << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  for (const auto& s : slots) {
    EMCGM_CHECK(s.out.size() == block_bytes());
    backend_->read_block(s.addr.disk, s.addr.track, s.out);
  }
  stats_.read_ops += 1;
  stats_.blocks_read += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
}

void DiskArray::parallel_write(std::span<const WriteSlot> slots) {
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel write");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel write of " << slots.size() << " blocks on "
                                       << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  for (const auto& s : slots) {
    EMCGM_CHECK(s.data.size() == block_bytes());
    backend_->write_block(s.addr.disk, s.addr.track, s.data);
  }
  stats_.write_ops += 1;
  stats_.blocks_written += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
}

std::uint64_t DiskArray::tracks_used() const {
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < num_disks(); ++d) {
    total += backend_->tracks_used(d);
  }
  return total;
}

}  // namespace emcgm::pdm
