#include "pdm/disk_array.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace emcgm::pdm {

namespace {

// io_threads resolution: 0 = serial, kIoThreadsAuto = hw_concurrency, both
// clamped to the number of disks (more workers than disks cannot help — one
// parallel op has at most one block per disk).
std::uint32_t resolve_io_workers(std::uint32_t requested, std::uint32_t D) {
  if (requested == 0) return 0;
  if (requested == kIoThreadsAuto) {
    requested = std::thread::hardware_concurrency();
    if (requested == 0) requested = 1;
  }
  return std::min(requested, D);
}

}  // namespace

DiskArray::DiskArray(std::unique_ptr<StorageBackend> backend,
                     DiskArrayOptions opts)
    : backend_(std::move(backend)),
      opts_(std::move(opts)),
      geom_(backend_ ? backend_->geometry() : DiskGeometry{}) {
  EMCGM_CHECK(backend_ != nullptr);
  EMCGM_CHECK_MSG(num_disks() <= 64,
                  "disk-mask validation supports up to 64 disks");
  EMCGM_CHECK_MSG(opts_.retry.max_attempts >= 1,
                  "retry policy needs at least one attempt");
  if (opts_.checksums) {
    EMCGM_CHECK_MSG(geom_.block_bytes > kEnvelopeBytes + 8,
                    "physical block of " << geom_.block_bytes
                                         << " bytes too small for a "
                                         << kEnvelopeBytes
                                         << "-byte checksum envelope");
    geom_.block_bytes -= kEnvelopeBytes;  // expose the logical view
    scratch_.resize(backend_->geometry().block_bytes);
  }
  // Every backoff — serial or executor worker — goes through one resolved
  // sleep function, so the injectable hook covers all schedules.
  if (opts_.retry.sleep) {
    sleep_fn_ = opts_.retry.sleep;
  } else {
    sleep_fn_ = [](std::uint64_t us) {
      if (us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
    };
  }
  injector_ = dynamic_cast<FaultInjectingBackend*>(backend_.get());
  const std::uint32_t workers =
      resolve_io_workers(opts_.io_threads, num_disks());
  if (workers > 0) {
    exec_ = std::make_unique<IoExecutor>(*backend_, workers, opts_.checksums,
                                         opts_.retry, sleep_fn_,
                                         opts_.on_queue_depth);
  }
}

DiskArray::~DiskArray() {
  if (exec_) {
    // Quiesce: pending jobs reference buffers the owners are about to free.
    try {
      exec_->drain(stats_);
    } catch (...) {
      // A pending error has nowhere to go during teardown.
    }
  }
}

namespace {

// Builds the per-op disk occupancy mask, throwing on a same-disk conflict.
template <typename Slot>
std::uint64_t occupancy_mask(std::span<const Slot> slots, std::uint32_t D) {
  std::uint64_t mask = 0;
  for (const auto& s : slots) {
    EMCGM_CHECK_MSG(s.addr.disk < D,
                    "disk index " << s.addr.disk << " out of range (D=" << D
                                  << ")");
    const std::uint64_t bit = 1ULL << s.addr.disk;
    EMCGM_CHECK_MSG((mask & bit) == 0,
                    "parallel op touches disk " << s.addr.disk << " twice");
    mask |= bit;
  }
  return mask;
}

}  // namespace

void DiskArray::backoff(std::uint32_t retry) const {
  sleep_fn_(opts_.retry.backoff_us(retry));
}

void DiskArray::read_one(const ReadSlot& s) {
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      if (!opts_.checksums) {
        backend_->read_block(s.addr.disk, s.addr.track, s.out);
      } else {
        backend_->read_block(s.addr.disk, s.addr.track, scratch_);
        unseal_block(s.addr.disk, s.addr.track, scratch_, s.out);
      }
      return;
    } catch (const IoError& e) {
      if (e.kind() == IoErrorKind::kCorruption) {
        stats_.corruptions += 1;
        throw;
      }
      if (e.kind() != IoErrorKind::kTransient) throw;
      if (attempt >= opts_.retry.max_attempts) {
        throw IoError(IoErrorKind::kExhausted,
                      std::string("read gave up after ") +
                          std::to_string(attempt) + " attempts: " + e.what());
      }
      stats_.retries += 1;
      backoff(attempt);
    }
  }
}

void DiskArray::write_one(const WriteSlot& s) {
  std::span<const std::byte> phys = s.data;
  if (opts_.checksums) {
    seal_block(s.addr.disk, s.addr.track, s.data, scratch_);
    phys = scratch_;
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      backend_->write_block(s.addr.disk, s.addr.track, phys);
      return;
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kTransient) throw;
      if (attempt >= opts_.retry.max_attempts) {
        throw IoError(IoErrorKind::kExhausted,
                      std::string("write gave up after ") +
                          std::to_string(attempt) + " attempts: " + e.what());
      }
      stats_.retries += 1;
      backoff(attempt);
    }
  }
}

void DiskArray::pre_submit() {
  // With a fail-stop plan armed, the crash must land exactly between
  // completed parallel ops, as it does serially: quiesce before counting
  // the next op so no in-flight job observes the transition.
  if (exec_ && injector_ && injector_->armed() &&
      injector_->plan().crash_after_ops != 0) {
    drain();
  }
}

void DiskArray::parallel_read(std::span<const ReadSlot> slots) {
  if (exec_) {
    wait(parallel_read_async(slots));
    return;
  }
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel read");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel read of " << slots.size() << " blocks on "
                                      << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  backend_->note_parallel_op();
  for (const auto& s : slots) {
    EMCGM_CHECK(s.out.size() == block_bytes());
    read_one(s);
  }
  stats_.read_ops += 1;
  stats_.blocks_read += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
  if (opts_.on_charge) opts_.on_charge(slots.size());
}

void DiskArray::parallel_write(std::span<const WriteSlot> slots) {
  if (exec_) {
    (void)parallel_write_async(slots);  // write-behind
    return;
  }
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel write");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel write of " << slots.size() << " blocks on "
                                       << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  backend_->note_parallel_op();
  for (const auto& s : slots) {
    EMCGM_CHECK(s.data.size() == block_bytes());
    write_one(s);
  }
  stats_.write_ops += 1;
  stats_.blocks_written += slots.size();
  if (slots.size() == num_disks()) stats_.full_stripe_ops += 1;
  if (opts_.on_charge) opts_.on_charge(slots.size());
}

IoTicket DiskArray::parallel_read_async(std::span<const ReadSlot> slots) {
  if (!exec_) {
    parallel_read(slots);
    return 0;
  }
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel read");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel read of " << slots.size() << " blocks on "
                                      << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  for (const auto& s : slots) {
    EMCGM_CHECK(s.out.size() == block_bytes());
  }
  pre_submit();
  backend_->note_parallel_op();
  if (opts_.on_charge) opts_.on_charge(slots.size());
  return exec_->submit_read(slots);
}

IoTicket DiskArray::parallel_write_async(std::span<const WriteSlot> slots) {
  if (!exec_) {
    parallel_write(slots);
    return 0;
  }
  EMCGM_CHECK_MSG(!slots.empty(), "empty parallel write");
  EMCGM_CHECK_MSG(slots.size() <= num_disks(),
                  "parallel write of " << slots.size() << " blocks on "
                                       << num_disks() << " disks");
  (void)occupancy_mask(slots, num_disks());
  for (const auto& s : slots) {
    EMCGM_CHECK(s.data.size() == block_bytes());
  }
  pre_submit();
  backend_->note_parallel_op();
  if (opts_.on_charge) opts_.on_charge(slots.size());
  return exec_->submit_write(slots);
}

void DiskArray::wait(IoTicket ticket) const {
  if (exec_) exec_->wait(ticket, stats_);
}

void DiskArray::drain() const {
  if (exec_) exec_->drain(stats_);
}

std::uint64_t DiskArray::in_flight() const {
  return exec_ ? exec_->in_flight_blocks() : 0;
}

std::uint64_t DiskArray::tracks_used() const {
  drain();
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < num_disks(); ++d) {
    total += backend_->tracks_used(d);
  }
  return total;
}

std::unique_ptr<DiskArray> make_disk_array(BackendKind kind,
                                           const DiskGeometry& logical,
                                           const std::string& file_dir,
                                           const DiskArrayOptions& opts,
                                           const FaultPlan& plan) {
  auto base =
      make_backend(kind, physical_geometry(logical, opts.checksums), file_dir);
  std::unique_ptr<StorageBackend> backend = std::move(base);
  if (plan.enabled()) {
    backend =
        std::make_unique<FaultInjectingBackend>(std::move(backend), plan);
  }
  return std::make_unique<DiskArray>(std::move(backend), opts);
}

}  // namespace emcgm::pdm
