// Geometry of one processor's disk subsystem in the Parallel Disk Model.
//
// A processor owns D disks; each disk is a sequence of tracks; a track holds
// exactly one block of block_bytes bytes (the paper's B, measured here in
// bytes — callers working in "items" multiply by their record size). One
// parallel I/O operation transfers up to D blocks, at most one per disk,
// with no restriction on which track each disk accesses (paper §6.2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/error.h"

namespace emcgm::pdm {

struct DiskGeometry {
  std::uint32_t num_disks = 1;     ///< D
  std::size_t block_bytes = 4096;  ///< B (bytes per block / track)

  void validate() const {
    EMCGM_CHECK_MSG(num_disks >= 1, "need at least one disk");
    EMCGM_CHECK_MSG(block_bytes >= 8, "block size too small");
  }
};

/// Address of one block: (disk, track). Tracks are unbounded; backends grow
/// on demand, mirroring the paper's assumption of sufficient disk space.
struct BlockAddr {
  std::uint32_t disk = 0;
  std::uint64_t track = 0;

  friend bool operator==(const BlockAddr&, const BlockAddr&) = default;
};

/// Consecutive ("striped") format, paper §2.1 footnote 2: the q-th block of a
/// run that starts at disk offset d and track T0 lives on disk (d+q) mod D at
/// track T0 + (d+q)/D.
inline BlockAddr consecutive_addr(std::uint32_t D, std::uint32_t d,
                                  std::uint64_t T0, std::uint64_t q) {
  EMCGM_ASSERT(d < D);
  return BlockAddr{static_cast<std::uint32_t>((d + q) % D),
                   T0 + (d + q) / D};
}

}  // namespace emcgm::pdm
