#include "pdm/backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace emcgm::pdm {

void StorageBackend::ensure_space(std::uint32_t disk,
                                  std::uint64_t track) const {
  if (quota_ == 0) return;
  const std::uint64_t need = (track + 1) * geom_.block_bytes;
  if (need <= quota_) return;
  if (track < tracks_used(disk)) return;  // overwrite, no growth
  std::ostringstream os;
  os << "disk " << disk << " full: materializing track " << track
     << " needs " << need << " bytes, quota is " << quota_;
  throw IoError(IoErrorKind::kNoSpace, os.str());
}

// ---------------------------------------------------------------- Memory --

MemoryBackend::MemoryBackend(const DiskGeometry& geom)
    : StorageBackend(geom), disks_(geom.num_disks) {}

void MemoryBackend::read_block(std::uint32_t disk, std::uint64_t track,
                               std::span<std::byte> out) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(out.size() == geom_.block_bytes);
  auto& d = disks_[disk];
  const std::size_t off = track * geom_.block_bytes;
  if (off + geom_.block_bytes <= d.size()) {
    std::memcpy(out.data(), d.data() + off, geom_.block_bytes);
  } else {
    // Sparse read: unwritten tracks are all-zero.
    std::memset(out.data(), 0, out.size());
    if (off < d.size()) {
      std::memcpy(out.data(), d.data() + off, d.size() - off);
    }
  }
}

void MemoryBackend::write_block(std::uint32_t disk, std::uint64_t track,
                                std::span<const std::byte> data) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(data.size() == geom_.block_bytes);
  ensure_space(disk, track);
  auto& d = disks_[disk];
  const std::size_t off = track * geom_.block_bytes;
  if (off + geom_.block_bytes > d.size()) d.resize(off + geom_.block_bytes);
  std::memcpy(d.data() + off, data.data(), geom_.block_bytes);
}

std::uint64_t MemoryBackend::tracks_used(std::uint32_t disk) const {
  EMCGM_CHECK(disk < geom_.num_disks);
  return disks_[disk].size() / geom_.block_bytes;
}

// ------------------------------------------------------------------ File --

namespace {

[[noreturn]] void raise_system(const char* what, const std::string& detail) {
  throw IoError(IoErrorKind::kSystem,
                std::string(what) + " " + detail + ": " +
                    std::strerror(errno));
}

// pread the full range, looping on EINTR and short reads. A short read at
// EOF ends the loop; the caller zero-fills the tail (sparse track).
std::size_t pread_full(int fd, std::byte* buf, std::size_t n, off_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_system("pread at offset", std::to_string(off));
    }
    if (r == 0) break;  // EOF
    done += static_cast<std::size_t>(r);
  }
  return done;
}

// pwrite the full range, looping on EINTR and short writes.
void pwrite_full(int fd, const std::byte* buf, std::size_t n, off_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_system("pwrite at offset", std::to_string(off));
    }
    EMCGM_CHECK_MSG(r > 0, "pwrite returned 0 before completing the block");
    done += static_cast<std::size_t>(r);
  }
}

}  // namespace

FileBackend::FileBackend(const DiskGeometry& geom, std::string directory)
    : StorageBackend(geom), dir_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw IoError(IoErrorKind::kSystem,
                  "create_directories " + dir_ + ": " + ec.message());
  }
  fds_.reserve(geom.num_disks);
  paths_.reserve(geom.num_disks);
  for (std::uint32_t d = 0; d < geom.num_disks; ++d) {
    std::string path = dir_ + "/disk" + std::to_string(d) + ".bin";
    int flags = O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC;
    int fd = -1;
#ifdef O_NOATIME
    // Skip access-time bookkeeping: every block read would otherwise dirty
    // the inode, which is pure overhead for a simulated disk. The flag is
    // owner-only, so fall back without it on EPERM (e.g. files we do not
    // own, or certain shared mounts).
    fd = ::open(path.c_str(), flags | O_NOATIME, 0644);
    if (fd < 0 && errno != EPERM) raise_system("open", path);
#endif
    if (fd < 0) {
      fd = ::open(path.c_str(), flags, 0644);
      if (fd < 0) raise_system("open", path);
    }
#ifdef POSIX_FADV_RANDOM
    // The PDM access pattern is track-addressed, not sequential: disable
    // kernel readahead so per-disk latencies reflect the requested blocks.
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_RANDOM);
#endif
    fds_.push_back(fd);
    paths_.push_back(std::move(path));
  }
  // Make the just-created directory entries durable up front: a disk file
  // that exists in the page cache but not on the platter is useless to a
  // recovery that follows a host crash.
  dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd_ < 0) raise_system("open directory", dir_);
  if (::fsync(dir_fd_) != 0) raise_system("fsync directory", dir_);
}

FileBackend::~FileBackend() {
  if (dir_fd_ >= 0 && ::close(dir_fd_) != 0) {
    std::fprintf(stderr, "emcgm: close(%s) failed: %s\n", dir_.c_str(),
                 std::strerror(errno));
  }
  for (std::size_t d = 0; d < fds_.size(); ++d) {
    // Destructors cannot throw; report clean-up failures instead of
    // swallowing them.
    if (::close(fds_[d]) != 0) {
      std::fprintf(stderr, "emcgm: close(%s) failed: %s\n", paths_[d].c_str(),
                   std::strerror(errno));
    }
    if (::unlink(paths_[d].c_str()) != 0) {
      std::fprintf(stderr, "emcgm: unlink(%s) failed: %s\n", paths_[d].c_str(),
                   std::strerror(errno));
    }
  }
}

void FileBackend::read_block(std::uint32_t disk, std::uint64_t track,
                             std::span<std::byte> out) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(out.size() == geom_.block_bytes);
  const auto off = static_cast<off_t>(track * geom_.block_bytes);
  const std::size_t n = pread_full(fds_[disk], out.data(), out.size(), off);
  // Short read past EOF = sparse region: zero-fill the tail.
  if (n < out.size()) {
    std::memset(out.data() + n, 0, out.size() - n);
  }
}

void FileBackend::write_block(std::uint32_t disk, std::uint64_t track,
                              std::span<const std::byte> data) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(data.size() == geom_.block_bytes);
  ensure_space(disk, track);
  const auto off = static_cast<off_t>(track * geom_.block_bytes);
  pwrite_full(fds_[disk], data.data(), data.size(), off);
}

void FileBackend::sync() {
  for (std::size_t d = 0; d < fds_.size(); ++d) {
    if (::fsync(fds_[d]) != 0) raise_system("fsync", paths_[d]);
  }
  // The directory too: a first write to a sparse region can extend the file,
  // and the rename-free commit protocol relies on the entries being stable.
  if (::fsync(dir_fd_) != 0) raise_system("fsync directory", dir_);
}

std::uint64_t FileBackend::tracks_used(std::uint32_t disk) const {
  EMCGM_CHECK(disk < geom_.num_disks);
  struct stat st{};
  EMCGM_CHECK(::fstat(fds_[disk], &st) == 0);
  return static_cast<std::uint64_t>(st.st_size) / geom_.block_bytes;
}

std::unique_ptr<StorageBackend> make_backend(BackendKind kind,
                                             const DiskGeometry& geom,
                                             const std::string& file_dir) {
  switch (kind) {
    case BackendKind::kMemory:
      return std::make_unique<MemoryBackend>(geom);
    case BackendKind::kFile:
      EMCGM_CHECK_MSG(!file_dir.empty(),
                      "FileBackend requires a directory path");
      return std::make_unique<FileBackend>(geom, file_dir);
  }
  EMCGM_CHECK_MSG(false, "unknown backend kind");
  return nullptr;  // unreachable
}

}  // namespace emcgm::pdm
