#include "pdm/backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace emcgm::pdm {

// ---------------------------------------------------------------- Memory --

MemoryBackend::MemoryBackend(const DiskGeometry& geom)
    : StorageBackend(geom), disks_(geom.num_disks) {}

void MemoryBackend::read_block(std::uint32_t disk, std::uint64_t track,
                               std::span<std::byte> out) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(out.size() == geom_.block_bytes);
  auto& d = disks_[disk];
  const std::size_t off = track * geom_.block_bytes;
  if (off + geom_.block_bytes <= d.size()) {
    std::memcpy(out.data(), d.data() + off, geom_.block_bytes);
  } else {
    // Sparse read: unwritten tracks are all-zero.
    std::memset(out.data(), 0, out.size());
    if (off < d.size()) {
      std::memcpy(out.data(), d.data() + off, d.size() - off);
    }
  }
}

void MemoryBackend::write_block(std::uint32_t disk, std::uint64_t track,
                                std::span<const std::byte> data) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(data.size() == geom_.block_bytes);
  auto& d = disks_[disk];
  const std::size_t off = track * geom_.block_bytes;
  if (off + geom_.block_bytes > d.size()) d.resize(off + geom_.block_bytes);
  std::memcpy(d.data() + off, data.data(), geom_.block_bytes);
}

std::uint64_t MemoryBackend::tracks_used(std::uint32_t disk) const {
  EMCGM_CHECK(disk < geom_.num_disks);
  return disks_[disk].size() / geom_.block_bytes;
}

// ------------------------------------------------------------------ File --

FileBackend::FileBackend(const DiskGeometry& geom, std::string directory)
    : StorageBackend(geom), dir_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // open() reports failures
  fds_.reserve(geom.num_disks);
  paths_.reserve(geom.num_disks);
  for (std::uint32_t d = 0; d < geom.num_disks; ++d) {
    std::string path = dir_ + "/disk" + std::to_string(d) + ".bin";
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    EMCGM_CHECK_MSG(fd >= 0, "cannot open " << path << ": "
                                            << std::strerror(errno));
    fds_.push_back(fd);
    paths_.push_back(std::move(path));
  }
}

FileBackend::~FileBackend() {
  for (std::size_t d = 0; d < fds_.size(); ++d) {
    ::close(fds_[d]);
    ::unlink(paths_[d].c_str());
  }
}

void FileBackend::read_block(std::uint32_t disk, std::uint64_t track,
                             std::span<std::byte> out) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(out.size() == geom_.block_bytes);
  const auto off = static_cast<off_t>(track * geom_.block_bytes);
  const ssize_t n = ::pread(fds_[disk], out.data(), out.size(), off);
  EMCGM_CHECK_MSG(n >= 0, "pread failed: " << std::strerror(errno));
  // Short read past EOF = sparse region: zero-fill the tail.
  if (static_cast<std::size_t>(n) < out.size()) {
    std::memset(out.data() + n, 0, out.size() - static_cast<std::size_t>(n));
  }
}

void FileBackend::write_block(std::uint32_t disk, std::uint64_t track,
                              std::span<const std::byte> data) {
  EMCGM_CHECK(disk < geom_.num_disks);
  EMCGM_CHECK(data.size() == geom_.block_bytes);
  const auto off = static_cast<off_t>(track * geom_.block_bytes);
  const ssize_t n = ::pwrite(fds_[disk], data.data(), data.size(), off);
  EMCGM_CHECK_MSG(n == static_cast<ssize_t>(data.size()),
                  "pwrite failed: " << std::strerror(errno));
}

std::uint64_t FileBackend::tracks_used(std::uint32_t disk) const {
  EMCGM_CHECK(disk < geom_.num_disks);
  struct stat st{};
  EMCGM_CHECK(::fstat(fds_[disk], &st) == 0);
  return static_cast<std::uint64_t>(st.st_size) / geom_.block_bytes;
}

std::unique_ptr<StorageBackend> make_backend(BackendKind kind,
                                             const DiskGeometry& geom,
                                             const std::string& file_dir) {
  switch (kind) {
    case BackendKind::kMemory:
      return std::make_unique<MemoryBackend>(geom);
    case BackendKind::kFile:
      EMCGM_CHECK_MSG(!file_dir.empty(),
                      "FileBackend requires a directory path");
      return std::make_unique<FileBackend>(geom, file_dir);
  }
  EMCGM_CHECK_MSG(false, "unknown backend kind");
  return nullptr;  // unreachable
}

}  // namespace emcgm::pdm
