// Checksummed block envelope for the PDM storage layer.
//
// When checksums are enabled, every physical block stored by a backend is an
// *envelope*: a fixed 24-byte header followed by the logical payload. The
// header carries a magic, a CRC32C over (disk || track || payload), and the
// block's own address tag. DiskArray verifies the envelope on every read, so
// three distinct failure modes all surface as typed emcgm::IoError
// (IoErrorKind::kCorruption) instead of silent wrong answers:
//
//   * bit rot        — payload bytes changed at rest (CRC mismatch),
//   * torn writes    — only a prefix of the block reached the media
//                      (CRC mismatch),
//   * misdirection   — a valid block landed on / was fetched from the wrong
//                      (disk, track) (address-tag mismatch).
//
// An all-zero physical block is a sparse, never-written track and unseals to
// an all-zero payload — preserving the backends' sparse-read contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "pdm/geometry.h"

namespace emcgm::pdm {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), software
/// slice-by-one. `seed` chains incremental computations.
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Envelope header: magic(4) | crc(4) | disk(4) | reserved(4) | track(8).
inline constexpr std::size_t kEnvelopeBytes = 24;
inline constexpr std::uint32_t kBlockMagic = 0x454D4342;  // "EMCB"

/// Geometry the *backend* must be built with so that DiskArray can expose
/// `logical` to the layers above: each physical track gains header room.
inline DiskGeometry physical_geometry(const DiskGeometry& logical,
                                      bool checksums) {
  if (!checksums) return logical;
  DiskGeometry phys = logical;
  phys.block_bytes += kEnvelopeBytes;
  return phys;
}

/// Seal `payload` for storage at (disk, track). `phys` must be exactly
/// payload.size() + kEnvelopeBytes long.
void seal_block(std::uint32_t disk, std::uint64_t track,
                std::span<const std::byte> payload, std::span<std::byte> phys);

/// Verify `phys` (read from (disk, track)) and extract its payload into
/// `out` (exactly phys.size() - kEnvelopeBytes long). An all-zero physical
/// block is sparse: `out` is zero-filled. Throws IoError
/// (IoErrorKind::kCorruption) on a CRC or address-tag mismatch.
void unseal_block(std::uint32_t disk, std::uint64_t track,
                  std::span<const std::byte> phys, std::span<std::byte> out);

}  // namespace emcgm::pdm
