// Analytic disk service-time model, standing in for the paper's Fig. 8
// (Stevens' measurements of throughput vs. block size) and for converting
// counted parallel I/O operations into modeled I/O time (the paper's G).
//
// One parallel op positions every participating disk arm once and streams
// one block: t_op = seek + rotational latency + block_bytes / bandwidth.
// Because the D disks work concurrently, the op time equals the per-disk
// time; total modeled I/O time = ops * t_op. Defaults are typical of
// late-1990s SCSI drives (the paper's testbed era).
#pragma once

#include <cstddef>
#include <cstdint>

#include "pdm/io_stats.h"

namespace emcgm::pdm {

struct DiskCostModel {
  double avg_seek_ms = 8.5;         ///< average arm positioning time
  double avg_rotational_ms = 4.17;  ///< half a revolution at 7200 rpm
  double bandwidth_mb_s = 20.0;     ///< sustained media transfer rate

  /// Service time of one parallel I/O op moving one block per busy disk.
  double op_seconds(std::size_t block_bytes) const;

  /// Modeled I/O time (the paper's G * #ops) for an operation count.
  double io_seconds(const IoStats& stats, std::size_t block_bytes) const;

  /// Effective per-disk throughput in MB/s when transferring blocks of the
  /// given size — the Fig. 8 curve: small blocks are dominated by
  /// positioning, large blocks approach the media rate.
  double effective_mb_s(std::size_t block_bytes) const;

  /// Block size (bytes) at which effective throughput reaches the given
  /// fraction of the sustained media rate. Solving
  /// frac = transfer / (position + transfer) gives the Fig.-8 knee that
  /// motivates the paper's B ~ 10^3 items recommendation.
  std::size_t block_bytes_for_efficiency(double frac) const;
};

}  // namespace emcgm::pdm
