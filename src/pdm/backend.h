// Storage backends for the simulated disk array.
//
// MemoryBackend keeps every track in RAM — the default for tests and
// benchmarks, where only the I/O *counts* matter. FileBackend stores one
// flat file per simulated disk and performs real pread/pwrite at
// track-aligned offsets, demonstrating that the same code path drives real
// external storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pdm/geometry.h"

namespace emcgm::pdm {

/// Abstract per-disk block store. Implementations must allow sparse writes:
/// writing track t implicitly materializes (zero-filled) tracks below t.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Copy one block from (disk, track) into out (exactly block_bytes long).
  /// Reading a never-written track yields zero bytes.
  virtual void read_block(std::uint32_t disk, std::uint64_t track,
                          std::span<std::byte> out) = 0;

  /// Copy one block (exactly block_bytes long) to (disk, track).
  virtual void write_block(std::uint32_t disk, std::uint64_t track,
                           std::span<const std::byte> data) = 0;

  /// Highest materialized track count per disk (capacity usage reporting).
  virtual std::uint64_t tracks_used(std::uint32_t disk) const = 0;

  /// Called by DiskArray once per parallel I/O operation, before its block
  /// transfers. Default: no-op. FaultInjectingBackend counts these to model
  /// fail-stop crashes "after K parallel I/Os".
  virtual void note_parallel_op() {}

  /// Force every completed write down to durable storage. Default: no-op
  /// (MemoryBackend has no durability to speak of). FileBackend fsyncs each
  /// disk file; commit() calls this before declaring a boundary committed,
  /// so a committed checkpoint survives the host, not just the process.
  virtual void sync() {}

  /// Per-disk capacity quota in bytes (0 = unlimited, the default). A write
  /// that would *materialize* a disk past the quota throws
  /// IoError(kNoSpace) before touching the media; overwrites of tracks
  /// already materialized always succeed, so lowering the quota under live
  /// data never bricks it — and raising (or clearing) the quota makes the
  /// refused writes succeed verbatim, which is what lets a checkpointed run
  /// resume bit-identically after space is freed. Quotas count the bytes on
  /// the media, i.e. the *physical* block size (checksum envelope included).
  /// Decorators (FaultInjectingBackend) forward to the innermost store.
  virtual void set_disk_quota_bytes(std::uint64_t quota) { quota_ = quota; }
  virtual std::uint64_t disk_quota_bytes() const { return quota_; }

  const DiskGeometry& geometry() const { return geom_; }

 protected:
  explicit StorageBackend(const DiskGeometry& geom) : geom_(geom) {
    geom_.validate();
  }

  /// Quota check for write paths: throws IoError(kNoSpace) when writing
  /// `track` would grow `disk` beyond the quota (sparse semantics: writing
  /// track t materializes every track below it too).
  void ensure_space(std::uint32_t disk, std::uint64_t track) const;

  DiskGeometry geom_;

 private:
  std::uint64_t quota_ = 0;  ///< per-disk byte quota; 0 = unlimited
};

/// In-RAM backing store; tracks grow on demand.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(const DiskGeometry& geom);

  void read_block(std::uint32_t disk, std::uint64_t track,
                  std::span<std::byte> out) override;
  void write_block(std::uint32_t disk, std::uint64_t track,
                   std::span<const std::byte> data) override;
  std::uint64_t tracks_used(std::uint32_t disk) const override;

 private:
  // disks_[d] is the linearized track data of disk d.
  std::vector<std::vector<std::byte>> disks_;
};

/// One flat file per disk under a caller-supplied directory. Files are
/// created on first use and removed in the destructor.
class FileBackend final : public StorageBackend {
 public:
  FileBackend(const DiskGeometry& geom, std::string directory);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  void read_block(std::uint32_t disk, std::uint64_t track,
                  std::span<std::byte> out) override;
  void write_block(std::uint32_t disk, std::uint64_t track,
                   std::span<const std::byte> data) override;
  std::uint64_t tracks_used(std::uint32_t disk) const override;
  void sync() override;

  const std::string& directory() const { return dir_; }

 private:
  std::string dir_;
  std::vector<int> fds_;          // one file descriptor per disk
  std::vector<std::string> paths_;
  int dir_fd_ = -1;               // for fsyncing the directory entries
};

/// Backend choice for configuration structs.
enum class BackendKind { kMemory, kFile };

std::unique_ptr<StorageBackend> make_backend(BackendKind kind,
                                             const DiskGeometry& geom,
                                             const std::string& file_dir = "");

}  // namespace emcgm::pdm
