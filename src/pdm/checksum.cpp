#include "pdm/checksum.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/error.h"

namespace emcgm::pdm {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t poly = 0x82F63B78;  // 0x1EDC6F41 reflected
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc32c_table();

// Header field offsets within the 24-byte envelope.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffCrc = 4;
constexpr std::size_t kOffDisk = 8;
constexpr std::size_t kOffTrack = 16;  // 12..16 reserved (zero)

template <typename T>
void store_le(std::span<std::byte> buf, std::size_t off, T v) {
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

template <typename T>
T load_le(std::span<const std::byte> buf, std::size_t off) {
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  return v;
}

/// CRC over the address tag then the payload, so a block copied verbatim to
/// another (disk, track) fails verification even though its bytes are intact.
std::uint32_t tagged_crc(std::uint32_t disk, std::uint64_t track,
                         std::span<const std::byte> payload) {
  std::array<std::byte, 12> tag{};
  store_le(tag, 0, disk);
  store_le(tag, 4, track);
  return crc32c(payload, crc32c(tag));
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = ~seed;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

void seal_block(std::uint32_t disk, std::uint64_t track,
                std::span<const std::byte> payload,
                std::span<std::byte> phys) {
  EMCGM_CHECK(phys.size() == payload.size() + kEnvelopeBytes);
  std::memset(phys.data(), 0, kEnvelopeBytes);
  store_le(phys, kOffMagic, kBlockMagic);
  store_le(phys, kOffCrc, tagged_crc(disk, track, payload));
  store_le(phys, kOffDisk, disk);
  store_le(phys, kOffTrack, track);
  std::memcpy(phys.data() + kEnvelopeBytes, payload.data(), payload.size());
}

void unseal_block(std::uint32_t disk, std::uint64_t track,
                  std::span<const std::byte> phys, std::span<std::byte> out) {
  EMCGM_CHECK(phys.size() == out.size() + kEnvelopeBytes);
  const auto magic = load_le<std::uint32_t>(phys, kOffMagic);
  if (magic != kBlockMagic) {
    // Sparse track: the backends return all-zero bytes for never-written
    // tracks, which cannot carry a valid magic.
    const bool all_zero = std::all_of(phys.begin(), phys.end(), [](std::byte b) {
      return b == std::byte{0};
    });
    if (all_zero) {
      std::memset(out.data(), 0, out.size());
      return;
    }
    std::ostringstream os;
    os << "bad block magic 0x" << std::hex << magic << std::dec << " at disk "
       << disk << " track " << track;
    throw IoError(IoErrorKind::kCorruption, os.str());
  }
  const auto tag_disk = load_le<std::uint32_t>(phys, kOffDisk);
  const auto reserved = load_le<std::uint32_t>(phys, kOffDisk + 4);
  const auto tag_track = load_le<std::uint64_t>(phys, kOffTrack);
  if (reserved != 0) {
    // Sealed as zero; anything else is header rot the CRC does not cover.
    std::ostringstream os;
    os << "corrupt envelope (reserved bytes) at disk " << disk << " track "
       << track;
    throw IoError(IoErrorKind::kCorruption, os.str());
  }
  if (tag_disk != disk || tag_track != track) {
    std::ostringstream os;
    os << "misdirected block: expected disk " << disk << " track " << track
       << ", envelope says disk " << tag_disk << " track " << tag_track;
    throw IoError(IoErrorKind::kCorruption, os.str());
  }
  const auto payload = phys.subspan(kEnvelopeBytes);
  const auto want = load_le<std::uint32_t>(phys, kOffCrc);
  const auto got = tagged_crc(disk, track, payload);
  if (want != got) {
    std::ostringstream os;
    os << "checksum mismatch at disk " << disk << " track " << track
       << ": stored 0x" << std::hex << want << ", computed 0x" << got;
    throw IoError(IoErrorKind::kCorruption, os.str());
  }
  std::memcpy(out.data(), payload.data(), out.size());
}

}  // namespace emcgm::pdm
