// Striped ("consecutive format") layout helpers and the FIFO write/read
// batching discipline of the paper's DiskWrite procedure.
//
// TrackSpace / TrackRegion carve the single unbounded track space of a
// DiskArray into independent regions (context store, message matrix, user
// data areas) while keeping one DiskArray so that the parallel-op legality
// rule and the I/O statistics stay unified. A region allocates physical
// track ranges lazily in fixed-size chunks; the same range is reserved on
// every disk, so consecutive-format addressing inside a region is exactly
// the paper's footnote-2 scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pdm/disk_array.h"
#include "pdm/geometry.h"
#include "util/math.h"

namespace emcgm::pdm {

/// Monotone allocator of physical track ranges, shared by all regions of one
/// DiskArray. Ranges apply to every disk simultaneously.
class TrackSpace {
 public:
  std::uint64_t acquire(std::uint64_t tracks) {
    const std::uint64_t t = next_;
    next_ += tracks;
    return t;
  }
  std::uint64_t high_water() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

/// A logically contiguous, physically chunked band of tracks.
class TrackRegion {
 public:
  TrackRegion(TrackSpace& space, std::uint64_t chunk_tracks = 1024)
      : space_(&space), chunk_tracks_(chunk_tracks) {
    EMCGM_CHECK(chunk_tracks_ >= 1);
  }

  /// Map a logical track to its physical track, growing the region to cover
  /// it if needed.
  std::uint64_t physical_track(std::uint64_t ltrack) {
    const std::uint64_t chunk = ltrack / chunk_tracks_;
    while (chunk >= chunks_.size()) {
      chunks_.push_back(space_->acquire(chunk_tracks_));
    }
    return chunks_[chunk] + ltrack % chunk_tracks_;
  }

  std::uint64_t tracks_reserved() const {
    return chunks_.size() * chunk_tracks_;
  }

 private:
  TrackSpace* space_;
  std::uint64_t chunk_tracks_;
  std::vector<std::uint64_t> chunks_;  // physical base track of each chunk
};

/// A consecutive-format run of blocks inside a region: the q-th block lives
/// on disk (start_disk + q) mod D at logical track
/// start_track + (start_disk + q) / D.
struct Extent {
  std::uint32_t start_disk = 0;
  std::uint64_t start_track = 0;
  std::uint64_t bytes = 0;

  std::uint64_t blocks(std::size_t block_bytes) const {
    return ceil_div(bytes, block_bytes);
  }

  BlockAddr addr(std::uint32_t D, std::uint64_t q) const {
    return consecutive_addr(D, start_disk, start_track, q);
  }
};

/// Bump allocator of extents within one region, tracking the global block
/// cursor so consecutive allocations continue the stripe seamlessly
/// (no disk is skipped between extents — writes across extents can share
/// parallel ops).
class StripeCursor {
 public:
  explicit StripeCursor(std::uint32_t num_disks) : D_(num_disks) {
    EMCGM_CHECK(D_ >= 1);
  }

  Extent alloc(std::uint64_t bytes, std::size_t block_bytes) {
    Extent e;
    // Global block g maps to disk g mod D, track g / D; consecutive_addr
    // reproduces this for block q of the extent given (g mod D, g / D).
    e.start_disk = static_cast<std::uint32_t>(next_block_ % D_);
    e.start_track = next_block_ / D_;
    e.bytes = bytes;
    next_block_ += ceil_div(bytes, block_bytes);
    return e;
  }

  void reset() { next_block_ = 0; }
  std::uint64_t blocks_allocated() const { return next_block_; }

  /// Rewind/replay support for checkpoint recovery: restore the cursor to a
  /// previously observed blocks_allocated() position.
  void restore(std::uint64_t blocks) { next_block_ = blocks; }

 private:
  std::uint32_t D_;
  std::uint64_t next_block_ = 0;
};

/// Write an extent's bytes in consecutive format: ceil(blocks/D) parallel
/// ops, all but the first/last fully striped. The final partial block is
/// zero-padded.
void write_striped(DiskArray& array, TrackRegion& region, const Extent& e,
                   std::span<const std::byte> data);

/// Read an extent previously written with write_striped. out.size() must be
/// e.bytes.
void read_striped(DiskArray& array, TrackRegion& region, const Extent& e,
                  std::span<std::byte> out);

/// Async (prefetch) variant of read_striped: issues the same batches through
/// parallel_read_async and returns the last ticket. `out` must hold whole
/// blocks — e.blocks(B) * B bytes — so no tail staging is needed; the caller
/// trims to e.bytes after waiting. In serial mode the reads execute
/// immediately and the returned ticket is already complete.
IoTicket read_striped_async(DiskArray& array, TrackRegion& region,
                            const Extent& e, std::span<std::byte> out);

/// Async variant of greedy_read: same batching, submitted without waiting.
/// Returns the last ticket (0 when slots is empty or in serial mode).
IoTicket greedy_read_async(DiskArray& array, std::span<const ReadSlot> slots);

/// FIFO batched write, per the paper's DiskWrite procedure: slots are
/// serviced strictly in order; a parallel op accumulates slots until one
/// conflicts (same disk) with an earlier slot of the op or the op holds D
/// blocks. Returns the number of parallel ops issued.
std::uint64_t fifo_write(DiskArray& array, std::span<const WriteSlot> slots);

/// FIFO batched read with the same discipline.
std::uint64_t fifo_read(DiskArray& array, std::span<const ReadSlot> slots);

/// Order-free batched write: slots are grouped into parallel ops by pulling
/// one pending block per disk per op (round-robin over per-disk queues).
/// Achieves max_d(blocks on disk d) ops — optimal for any fixed assignment
/// of blocks to disks. Used where slots come from scattered extents whose
/// FIFO order would conflict needlessly.
std::uint64_t greedy_write(DiskArray& array, std::span<const WriteSlot> slots);

/// Order-free batched read with the same grouping.
std::uint64_t greedy_read(DiskArray& array, std::span<const ReadSlot> slots);

}  // namespace emcgm::pdm
