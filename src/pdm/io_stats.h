// I/O accounting in PDM units: the cost measure of the model is the number
// of parallel I/O operations, each moving up to D blocks (one per disk).
//
// Thread-safety discipline (DESIGN.md §10/§11): every IoStats instance is
// *shard-merged*. A DiskArray's live counters are written only by the one
// thread driving that disk subsystem's host (host shard h belongs to the
// thread running host h; with use_threads off, everything belongs to the
// main thread). Cross-host aggregates — RunResult::io, io_per_step, the
// metrics registry's per-superstep rows, trace-span I/O deltas — are
// *barrier-owned*: computed only by the main thread at superstep barriers
// by summing/differencing the host shards in canonical host order. The
// consequence, asserted by ObsThreaded.ShardCountersBarrierInvariant, is
// that every counter here is bit-identical with threads on or off.
#pragma once

#include <cstdint>

namespace emcgm::pdm {

struct IoStats {
  std::uint64_t read_ops = 0;        ///< parallel read operations
  std::uint64_t write_ops = 0;       ///< parallel write operations
  std::uint64_t blocks_read = 0;     ///< total blocks moved by reads
  std::uint64_t blocks_written = 0;  ///< total blocks moved by writes
  std::uint64_t full_stripe_ops = 0; ///< ops that used all D disks
  std::uint64_t retries = 0;         ///< transient-fault block retries
  std::uint64_t corruptions = 0;     ///< checksum/tag mismatches detected
  std::uint64_t fsyncs = 0;          ///< durability barriers (DiskArray::sync)

  std::uint64_t total_ops() const { return read_ops + write_ops; }
  std::uint64_t total_blocks() const { return blocks_read + blocks_written; }

  /// Fraction of ops that kept every disk busy; 1.0 = fully parallel I/O.
  double parallel_efficiency(std::uint32_t num_disks) const {
    const auto ops = total_ops();
    if (ops == 0) return 1.0;
    return static_cast<double>(total_blocks()) /
           (static_cast<double>(ops) * num_disks);
  }

  IoStats& operator+=(const IoStats& o) {
    read_ops += o.read_ops;
    write_ops += o.write_ops;
    blocks_read += o.blocks_read;
    blocks_written += o.blocks_written;
    full_stripe_ops += o.full_stripe_ops;
    retries += o.retries;
    corruptions += o.corruptions;
    fsyncs += o.fsyncs;
    return *this;
  }

  IoStats& operator-=(const IoStats& o) {
    read_ops -= o.read_ops;
    write_ops -= o.write_ops;
    blocks_read -= o.blocks_read;
    blocks_written -= o.blocks_written;
    full_stripe_ops -= o.full_stripe_ops;
    retries -= o.retries;
    corruptions -= o.corruptions;
    fsyncs -= o.fsyncs;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
  friend IoStats operator-(IoStats a, const IoStats& b) { return a -= b; }
  friend bool operator==(const IoStats&, const IoStats&) = default;
};

}  // namespace emcgm::pdm
