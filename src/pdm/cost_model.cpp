#include "pdm/cost_model.h"

#include "util/error.h"

namespace emcgm::pdm {

double DiskCostModel::op_seconds(std::size_t block_bytes) const {
  const double position_s = (avg_seek_ms + avg_rotational_ms) * 1e-3;
  const double transfer_s =
      static_cast<double>(block_bytes) / (bandwidth_mb_s * 1e6);
  return position_s + transfer_s;
}

double DiskCostModel::io_seconds(const IoStats& stats,
                                 std::size_t block_bytes) const {
  return static_cast<double>(stats.total_ops()) * op_seconds(block_bytes);
}

double DiskCostModel::effective_mb_s(std::size_t block_bytes) const {
  return static_cast<double>(block_bytes) / op_seconds(block_bytes) / 1e6;
}

std::size_t DiskCostModel::block_bytes_for_efficiency(double frac) const {
  EMCGM_CHECK(frac > 0.0 && frac < 1.0);
  const double position_s = (avg_seek_ms + avg_rotational_ms) * 1e-3;
  // frac = t / (p + t)  =>  t = p * frac / (1 - frac)
  const double transfer_s = position_s * frac / (1.0 - frac);
  return static_cast<std::size_t>(transfer_s * bandwidth_mb_s * 1e6);
}

}  // namespace emcgm::pdm
