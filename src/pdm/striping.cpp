#include "pdm/striping.h"

#include <cstring>

namespace emcgm::pdm {

void write_striped(DiskArray& array, TrackRegion& region, const Extent& e,
                   std::span<const std::byte> data) {
  EMCGM_CHECK(data.size() == e.bytes);
  const std::size_t B = array.block_bytes();
  const std::uint32_t D = array.num_disks();
  const std::uint64_t blocks = e.blocks(B);

  std::vector<std::byte> pad(B);  // zero-padded tail block
  std::vector<WriteSlot> batch;
  batch.reserve(D);

  for (std::uint64_t q = 0; q < blocks; ++q) {
    BlockAddr a = e.addr(D, q);
    a.track = region.physical_track(a.track);

    const std::size_t off = q * B;
    std::span<const std::byte> src;
    if (off + B <= data.size()) {
      src = data.subspan(off, B);
    } else {
      std::memset(pad.data(), 0, B);
      std::memcpy(pad.data(), data.data() + off, data.size() - off);
      src = std::span<const std::byte>(pad);
    }
    batch.push_back(WriteSlot{a, src});

    // Consecutive format guarantees the next D blocks hit D distinct disks,
    // so a batch flushes exactly when it reaches D slots.
    if (batch.size() == D || q + 1 == blocks) {
      array.parallel_write(batch);
      batch.clear();
    }
  }
}

void read_striped(DiskArray& array, TrackRegion& region, const Extent& e,
                  std::span<std::byte> out) {
  EMCGM_CHECK(out.size() == e.bytes);
  const std::size_t B = array.block_bytes();
  const std::uint32_t D = array.num_disks();
  const std::uint64_t blocks = e.blocks(B);

  std::vector<std::byte> tail(B);
  std::vector<ReadSlot> batch;
  batch.reserve(D);
  bool batch_has_tail = false;

  for (std::uint64_t q = 0; q < blocks; ++q) {
    BlockAddr a = e.addr(D, q);
    a.track = region.physical_track(a.track);

    const std::size_t off = q * B;
    if (off + B <= out.size()) {
      batch.push_back(ReadSlot{a, out.subspan(off, B)});
    } else {
      batch.push_back(ReadSlot{a, std::span<std::byte>(tail)});
      batch_has_tail = true;
    }

    if (batch.size() == D || q + 1 == blocks) {
      array.parallel_read(batch);
      if (batch_has_tail) {
        const std::size_t tail_off = (blocks - 1) * B;
        std::memcpy(out.data() + tail_off, tail.data(),
                    out.size() - tail_off);
        batch_has_tail = false;
      }
      batch.clear();
    }
  }
}

IoTicket read_striped_async(DiskArray& array, TrackRegion& region,
                            const Extent& e, std::span<std::byte> out) {
  const std::size_t B = array.block_bytes();
  const std::uint32_t D = array.num_disks();
  const std::uint64_t blocks = e.blocks(B);
  EMCGM_CHECK(out.size() == blocks * B);

  IoTicket last = 0;
  std::vector<ReadSlot> batch;
  batch.reserve(D);
  for (std::uint64_t q = 0; q < blocks; ++q) {
    BlockAddr a = e.addr(D, q);
    a.track = region.physical_track(a.track);
    batch.push_back(ReadSlot{a, out.subspan(q * B, B)});
    if (batch.size() == D || q + 1 == blocks) {
      last = array.parallel_read_async(batch);
      batch.clear();
    }
  }
  return last;
}

namespace {

template <typename Slot, typename IssueFn>
std::uint64_t fifo_batch(std::uint32_t D, std::span<const Slot> slots,
                         IssueFn issue) {
  std::uint64_t ops = 0;
  std::vector<Slot> batch;
  batch.reserve(D);
  std::uint64_t mask = 0;

  auto flush = [&] {
    if (batch.empty()) return;
    issue(std::span<const Slot>(batch));
    batch.clear();
    mask = 0;
    ++ops;
  };

  for (const auto& s : slots) {
    const std::uint64_t bit = 1ULL << s.addr.disk;
    if ((mask & bit) != 0 || batch.size() == D) flush();
    batch.push_back(s);
    mask |= bit;
  }
  flush();
  return ops;
}

}  // namespace

std::uint64_t fifo_write(DiskArray& array, std::span<const WriteSlot> slots) {
  return fifo_batch(array.num_disks(), slots, [&](auto span) {
    array.parallel_write(span);
  });
}

std::uint64_t fifo_read(DiskArray& array, std::span<const ReadSlot> slots) {
  return fifo_batch(array.num_disks(), slots, [&](auto span) {
    array.parallel_read(span);
  });
}

namespace {

template <typename Slot, typename IssueFn>
std::uint64_t greedy_batch(std::uint32_t D, std::span<const Slot> slots,
                           IssueFn issue) {
  // Per-disk queues, drained one block per disk per op.
  std::vector<std::vector<const Slot*>> queues(D);
  for (const auto& s : slots) queues[s.addr.disk].push_back(&s);

  std::uint64_t ops = 0;
  std::vector<std::size_t> next(D, 0);
  std::vector<Slot> batch;
  batch.reserve(D);
  for (;;) {
    batch.clear();
    for (std::uint32_t d = 0; d < D; ++d) {
      if (next[d] < queues[d].size()) batch.push_back(*queues[d][next[d]++]);
    }
    if (batch.empty()) break;
    issue(std::span<const Slot>(batch));
    ++ops;
  }
  return ops;
}

}  // namespace

std::uint64_t greedy_write(DiskArray& array,
                           std::span<const WriteSlot> slots) {
  return greedy_batch(array.num_disks(), slots, [&](auto span) {
    array.parallel_write(span);
  });
}

std::uint64_t greedy_read(DiskArray& array, std::span<const ReadSlot> slots) {
  return greedy_batch(array.num_disks(), slots, [&](auto span) {
    array.parallel_read(span);
  });
}

IoTicket greedy_read_async(DiskArray& array, std::span<const ReadSlot> slots) {
  IoTicket last = 0;
  greedy_batch(array.num_disks(), slots, [&](auto span) {
    last = array.parallel_read_async(span);
  });
  return last;
}

}  // namespace emcgm::pdm
