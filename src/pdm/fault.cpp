#include "pdm/fault.h"

#include <cstring>

namespace emcgm::pdm {

std::uint64_t fault_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double fault_coin(std::uint64_t seed, std::uint64_t stream,
                  std::uint64_t index) {
  const std::uint64_t r = fault_mix(seed ^ fault_mix(stream ^ index));
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

namespace {

// Distinct coin streams per (fault class, disk), exactly the net_fault.cpp
// idiom for (class, link): a full mix makes every stream independent, so a
// disk's fault schedule is a function of its own op sequence alone.
enum class DiskStream : std::uint64_t {
  kTransientRead = 1,
  kTransientWrite = 2,
  kBitflip = 3,
};

std::uint64_t disk_stream(DiskStream s, std::uint32_t disk) {
  return fault_mix((static_cast<std::uint64_t>(s) << 32) ^ disk);
}

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<StorageBackend> inner, FaultPlan plan)
    : StorageBackend(inner->geometry()),
      inner_(std::move(inner)),
      plan_(plan),
      disks_(geom_.num_disks) {}

FaultCounters FaultInjectingBackend::counters() const {
  FaultCounters total = note_counters_;
  for (const auto& d : disks_) total += d.counters;
  return total;
}

bool FaultInjectingBackend::fire_transient(std::uint64_t at, double prob,
                                           std::uint64_t stream,
                                           std::uint64_t index) const {
  if (at != 0 && index >= at && index < at + plan_.transient_burst) {
    return true;
  }
  return prob > 0 && fault_coin(plan_.seed, stream, index) < prob;
}

void FaultInjectingBackend::note_parallel_op() {
  inner_->note_parallel_op();
  if (!armed()) return;
  ++parallel_ops_;
  if (crashed_.load(std::memory_order_relaxed) ||
      (plan_.crash_after_ops != 0 && parallel_ops_ > plan_.crash_after_ops)) {
    crashed_.store(true, std::memory_order_relaxed);
    ++note_counters_.crashes;
    std::ostringstream os;
    os << "fail-stop crash injected after " << plan_.crash_after_ops
       << " parallel I/Os";
    throw IoError(IoErrorKind::kCrash, os.str());
  }
}

void FaultInjectingBackend::read_block(std::uint32_t disk, std::uint64_t track,
                                       std::span<std::byte> out) {
  if (armed()) {
    auto& d = disks_[disk];
    if (crashed_.load(std::memory_order_relaxed)) {
      ++d.counters.crashes;
      throw IoError(IoErrorKind::kCrash, "machine is down (fail-stop)");
    }
    const std::uint64_t index = ++d.reads;
    if (d.read_burst_left > 0 ||
        fire_transient(plan_.transient_read_at, plan_.transient_read_prob,
                       disk_stream(DiskStream::kTransientRead, disk), index)) {
      if (d.read_burst_left == 0) d.read_burst_left = plan_.transient_burst;
      --d.read_burst_left;
      ++d.counters.transient_reads;
      std::ostringstream os;
      os << "injected transient read fault (disk " << disk << " block read #"
         << index << ")";
      throw IoError(IoErrorKind::kTransient, os.str());
    }
  }
  inner_->read_block(disk, track, out);
}

void FaultInjectingBackend::write_block(std::uint32_t disk,
                                        std::uint64_t track,
                                        std::span<const std::byte> data) {
  if (!armed()) {
    inner_->write_block(disk, track, data);
    return;
  }
  auto& d = disks_[disk];
  if (crashed_.load(std::memory_order_relaxed)) {
    ++d.counters.crashes;
    throw IoError(IoErrorKind::kCrash, "machine is down (fail-stop)");
  }
  const std::uint64_t index = ++d.writes;
  if (d.write_burst_left > 0 ||
      fire_transient(plan_.transient_write_at, plan_.transient_write_prob,
                     disk_stream(DiskStream::kTransientWrite, disk), index)) {
    if (d.write_burst_left == 0) d.write_burst_left = plan_.transient_burst;
    --d.write_burst_left;
    ++d.counters.transient_writes;
    std::ostringstream os;
    os << "injected transient write fault (disk " << disk << " block write #"
       << index << ")";
    throw IoError(IoErrorKind::kTransient, os.str());
  }
  if (plan_.torn_write_at != 0 && index == plan_.torn_write_at) {
    // Silent torn write: only a prefix reaches the media; the tail keeps the
    // track's previous contents (zero if never written). Reported as success.
    ++d.counters.torn_writes;
    std::vector<std::byte> torn(data.begin(), data.end());
    const std::size_t keep = torn.size() / 2;
    std::vector<std::byte> old(torn.size());
    inner_->read_block(disk, track, old);
    std::memcpy(torn.data() + keep, old.data() + keep, torn.size() - keep);
    inner_->write_block(disk, track, torn);
    return;
  }
  if (plan_.bitflip_write_at != 0 && index == plan_.bitflip_write_at) {
    // Silent bit rot: one byte of the block is corrupted at rest.
    ++d.counters.bitflips;
    std::vector<std::byte> flipped(data.begin(), data.end());
    const std::size_t pos =
        fault_mix(plan_.seed ^ disk_stream(DiskStream::kBitflip, disk) ^
                  index) %
        (flipped.empty() ? 1 : flipped.size());
    flipped[pos] ^= std::byte{0x40};
    inner_->write_block(disk, track, flipped);
    return;
  }
  inner_->write_block(disk, track, data);
}

std::uint64_t FaultInjectingBackend::tracks_used(std::uint32_t disk) const {
  return inner_->tracks_used(disk);
}

}  // namespace emcgm::pdm
