// The Parallel Disk Model I/O device of one (real) processor.
//
// DiskArray is where the model's cost rule is *enforced*, not just counted:
// a parallel operation names up to D blocks, and submitting two blocks on
// the same disk in one operation is a contract violation (throws). Layout
// code above this layer (striping.h, emcgm/message_store.*) must therefore
// genuinely achieve the parallelism it claims — the op counts reported in
// benchmarks cannot be gamed by accident.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pdm/backend.h"
#include "pdm/checksum.h"
#include "pdm/fault.h"
#include "pdm/geometry.h"
#include "pdm/io_stats.h"

namespace emcgm::pdm {

/// One block's worth of a parallel read: destination buffer for addr.
struct ReadSlot {
  BlockAddr addr;
  std::span<std::byte> out;  ///< exactly block_bytes
};

/// One block's worth of a parallel write: source data for addr.
struct WriteSlot {
  BlockAddr addr;
  std::span<const std::byte> data;  ///< exactly block_bytes
};

/// Fault-tolerance configuration of one disk array.
struct DiskArrayOptions {
  /// Wrap every physical block in a CRC32C envelope (checksum.h) and verify
  /// it on read; corruption surfaces as IoError(kCorruption). The backend
  /// must be built with physical_geometry(logical, true).
  bool checksums = false;
  /// Retry schedule for IoError(kTransient) block faults.
  RetryPolicy retry{};
};

class DiskArray {
 public:
  /// `backend` carries the *physical* geometry: when opts.checksums is on,
  /// its block size must be the logical block size + kEnvelopeBytes (use
  /// physical_geometry()); geometry()/block_bytes() expose the logical view
  /// to the layers above.
  explicit DiskArray(std::unique_ptr<StorageBackend> backend,
                     DiskArrayOptions opts = {});

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  const DiskGeometry& geometry() const { return geom_; }
  std::uint32_t num_disks() const { return geometry().num_disks; }
  std::size_t block_bytes() const { return geometry().block_bytes; }

  /// One parallel read of 1..D blocks, at most one per disk. Counts as a
  /// single I/O operation regardless of how many disks participate
  /// (paper §6.2: "An operation involving fewer elements incurs the same
  /// cost").
  void parallel_read(std::span<const ReadSlot> slots);

  /// One parallel write of 1..D blocks, at most one per disk.
  void parallel_write(std::span<const WriteSlot> slots);

  /// Flush every completed write to durable storage (backend fsync; no-op
  /// for MemoryBackend). Counted in stats().fsyncs either way, so tests can
  /// assert the durability protocol without a real filesystem.
  void sync() {
    backend_->sync();
    ++stats_.fsyncs;
  }

  const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IoStats{}; }

  /// Total tracks currently materialized across all disks (space usage).
  std::uint64_t tracks_used() const;

  StorageBackend& backend() { return *backend_; }
  const DiskArrayOptions& options() const { return opts_; }

  /// The fault injector wrapping the backend, or nullptr if none.
  FaultInjectingBackend* fault_injector() {
    return dynamic_cast<FaultInjectingBackend*>(backend_.get());
  }

 private:
  void validate_batch_disks(std::size_t count,
                            const std::uint64_t disk_mask) const;
  void read_one(const ReadSlot& slot);
  void write_one(const WriteSlot& slot);
  void backoff(std::uint32_t retry) const;

  std::unique_ptr<StorageBackend> backend_;
  DiskArrayOptions opts_;
  DiskGeometry geom_;  ///< logical geometry (envelope stripped)
  std::vector<std::byte> scratch_;  ///< physical-block staging (checksums)
  IoStats stats_;
};

/// Build a DiskArray with the whole fault-tolerance stack in one call: a
/// base backend with the right physical geometry, optionally wrapped in a
/// FaultInjectingBackend, under the given checksum/retry options. `logical`
/// is the geometry the layers above will see.
std::unique_ptr<DiskArray> make_disk_array(BackendKind kind,
                                           const DiskGeometry& logical,
                                           const std::string& file_dir,
                                           const DiskArrayOptions& opts = {},
                                           const FaultPlan& plan = {});

}  // namespace emcgm::pdm
