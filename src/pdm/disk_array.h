// The Parallel Disk Model I/O device of one (real) processor.
//
// DiskArray is where the model's cost rule is *enforced*, not just counted:
// a parallel operation names up to D blocks, and submitting two blocks on
// the same disk in one operation is a contract violation (throws). Layout
// code above this layer (striping.h, emcgm/message_store.*) must therefore
// genuinely achieve the parallelism it claims — the op counts reported in
// benchmarks cannot be gamed by accident.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "pdm/backend.h"
#include "pdm/geometry.h"
#include "pdm/io_stats.h"

namespace emcgm::pdm {

/// One block's worth of a parallel read: destination buffer for addr.
struct ReadSlot {
  BlockAddr addr;
  std::span<std::byte> out;  ///< exactly block_bytes
};

/// One block's worth of a parallel write: source data for addr.
struct WriteSlot {
  BlockAddr addr;
  std::span<const std::byte> data;  ///< exactly block_bytes
};

class DiskArray {
 public:
  explicit DiskArray(std::unique_ptr<StorageBackend> backend);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  const DiskGeometry& geometry() const { return backend_->geometry(); }
  std::uint32_t num_disks() const { return geometry().num_disks; }
  std::size_t block_bytes() const { return geometry().block_bytes; }

  /// One parallel read of 1..D blocks, at most one per disk. Counts as a
  /// single I/O operation regardless of how many disks participate
  /// (paper §6.2: "An operation involving fewer elements incurs the same
  /// cost").
  void parallel_read(std::span<const ReadSlot> slots);

  /// One parallel write of 1..D blocks, at most one per disk.
  void parallel_write(std::span<const WriteSlot> slots);

  const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IoStats{}; }

  /// Total tracks currently materialized across all disks (space usage).
  std::uint64_t tracks_used() const;

  StorageBackend& backend() { return *backend_; }

 private:
  void validate_batch_disks(std::size_t count,
                            const std::uint64_t disk_mask) const;

  std::unique_ptr<StorageBackend> backend_;
  IoStats stats_;
};

}  // namespace emcgm::pdm
