// The Parallel Disk Model I/O device of one (real) processor.
//
// DiskArray is where the model's cost rule is *enforced*, not just counted:
// a parallel operation names up to D blocks, and submitting two blocks on
// the same disk in one operation is a contract violation (throws). Layout
// code above this layer (striping.h, emcgm/message_store.*) must therefore
// genuinely achieve the parallelism it claims — the op counts reported in
// benchmarks cannot be gamed by accident.
//
// With options().io_threads > 0 the array executes ops through the per-disk
// async executor (io_executor.h): parallel_write becomes write-behind
// (payloads are copied; completion deferred to the next wait/drain/sync),
// parallel_read waits for its own op, and the *_async variants expose
// tickets for prefetch pipelines. Per-disk FIFO order makes read-after-write
// on a disk safe without waiting. io_threads == 0 keeps the original serial
// path, bit for bit.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pdm/backend.h"
#include "pdm/checksum.h"
#include "pdm/fault.h"
#include "pdm/geometry.h"
#include "pdm/io_executor.h"
#include "pdm/io_stats.h"

namespace emcgm::pdm {

/// One block's worth of a parallel read: destination buffer for addr.
struct ReadSlot {
  BlockAddr addr;
  std::span<std::byte> out;  ///< exactly block_bytes
};

/// One block's worth of a parallel write: source data for addr.
struct WriteSlot {
  BlockAddr addr;
  std::span<const std::byte> data;  ///< exactly block_bytes
};

/// Completion ticket of an async parallel op (the op's sequence number).
/// Waiting on a ticket waits on every op submitted before it too.
using IoTicket = std::uint64_t;

/// DiskArrayOptions.io_threads value asking for min(D, hw_concurrency).
inline constexpr std::uint32_t kIoThreadsAuto = 0xFFFFFFFFu;

/// Arbitration probe: called once per parallel op at submission, with the
/// number of blocks the op moves, from whichever thread submits it (the
/// engine's host workers under use_threads — the sink must be thread-safe).
/// This is what a fair-share scheduler (src/svc/) charges its deficit
/// round-robin accounts with: blocks are the PDM cost unit, and submission
/// order is deterministic, so the charge stream is too. Counted work, never
/// wall time — arbitration decisions stay bit-reproducible.
using IoChargeFn = std::function<void(std::uint64_t blocks)>;

/// Fault-tolerance and execution configuration of one disk array.
struct DiskArrayOptions {
  /// Wrap every physical block in a CRC32C envelope (checksum.h) and verify
  /// it on read; corruption surfaces as IoError(kCorruption). The backend
  /// must be built with physical_geometry(logical, true).
  bool checksums = false;
  /// Retry schedule for IoError(kTransient) block faults.
  RetryPolicy retry{};
  /// Async I/O worker threads: 0 = serial path (the default; byte-identical
  /// legacy behavior), kIoThreadsAuto = min(D, hw_concurrency), otherwise
  /// clamped to [1, D]. Workers own disks round-robin (disk d -> worker
  /// d mod W).
  std::uint32_t io_threads = 0;
  /// Observability sink for the executor's in-flight block count; called on
  /// every submit/completion from submitter and worker threads (serialized
  /// by the executor's completion lock, but the sink must be thread-safe).
  IoExecutor::DepthFn on_queue_depth;
  /// Per-op block-count charge probe (see IoChargeFn); empty = detached.
  IoChargeFn on_charge;
};

class DiskArray {
 public:
  /// `backend` carries the *physical* geometry: when opts.checksums is on,
  /// its block size must be the logical block size + kEnvelopeBytes (use
  /// physical_geometry()); geometry()/block_bytes() expose the logical view
  /// to the layers above.
  explicit DiskArray(std::unique_ptr<StorageBackend> backend,
                     DiskArrayOptions opts = {});
  ~DiskArray();

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  const DiskGeometry& geometry() const { return geom_; }
  std::uint32_t num_disks() const { return geometry().num_disks; }
  std::size_t block_bytes() const { return geometry().block_bytes; }

  /// One parallel read of 1..D blocks, at most one per disk. Counts as a
  /// single I/O operation regardless of how many disks participate
  /// (paper §6.2: "An operation involving fewer elements incurs the same
  /// cost"). In async mode, waits for this op (and every prior one).
  void parallel_read(std::span<const ReadSlot> slots);

  /// One parallel write of 1..D blocks, at most one per disk. In async mode
  /// this is write-behind: it returns after submission, and any error
  /// surfaces at the next wait/drain/sync with canonical ordering.
  void parallel_write(std::span<const WriteSlot> slots);

  /// Async submission (prefetch pipelines). In serial mode these execute
  /// immediately and the returned ticket is already complete. The read
  /// buffers must stay alive until wait(ticket) returns; write payloads are
  /// copied.
  IoTicket parallel_read_async(std::span<const ReadSlot> slots);
  IoTicket parallel_write_async(std::span<const WriteSlot> slots);

  /// Wait until every op up to `ticket` is complete and its stats reaped.
  /// Rethrows the canonically-first pending error, if any.
  void wait(IoTicket ticket) const;

  /// Completion barrier: wait for everything submitted so far.
  void drain() const;

  /// True when the async executor is on (io_threads resolved to >= 1).
  bool async() const { return exec_ != nullptr; }

  /// Blocks currently submitted but not yet reaped (0 in serial mode and at
  /// every quiesce point). The chaos invariant layer asserts this is 0 at
  /// superstep barriers — write-behind must never leak across a commit.
  std::uint64_t in_flight() const;

  /// Set the per-disk capacity quota in bytes (0 = unlimited); forwarded to
  /// the backend, which enforces it on every materializing write with a
  /// typed IoError(kNoSpace). Quotas count physical bytes (checksum
  /// envelope included). Drains first so the quota change lands between
  /// parallel ops, exactly as it would serially.
  void set_quota_bytes(std::uint64_t quota) {
    drain();
    backend_->set_disk_quota_bytes(quota);
  }
  std::uint64_t quota_bytes() const { return backend_->disk_quota_bytes(); }

  /// Flush every completed write to durable storage (backend fsync; no-op
  /// for MemoryBackend). Counted in stats().fsyncs either way, so tests can
  /// assert the durability protocol without a real filesystem. Drains the
  /// executor first: fsync-before-declare needs the writes submitted.
  void sync() {
    drain();
    backend_->sync();
    ++stats_.fsyncs;
  }

  /// Counters reaped so far. Exact at quiesce points (after wait/drain/sync
  /// or in serial mode); while async ops are in flight, op-level counters
  /// lag submission and per-block counters may run ahead.
  const IoStats& stats() const { return stats_; }
  void reset_stats() {
    drain();
    stats_ = IoStats{};
  }

  /// Total tracks currently materialized across all disks (space usage).
  /// Drains first so pending write-behind extensions are visible.
  std::uint64_t tracks_used() const;

  StorageBackend& backend() { return *backend_; }
  const DiskArrayOptions& options() const { return opts_; }

  /// (Re-)attach the per-op charge probe after construction (the job
  /// service installs per-tenant accounts on engines it did not build).
  /// Must not be called while ops are being submitted concurrently.
  void set_charge_hook(IoChargeFn fn) { opts_.on_charge = std::move(fn); }

  /// The fault injector wrapping the backend, or nullptr if none.
  FaultInjectingBackend* fault_injector() { return injector_; }

 private:
  void validate_batch_disks(std::size_t count,
                            const std::uint64_t disk_mask) const;
  void pre_submit();
  void read_one(const ReadSlot& slot);
  void write_one(const WriteSlot& slot);
  void backoff(std::uint32_t retry) const;

  std::unique_ptr<StorageBackend> backend_;
  DiskArrayOptions opts_;
  DiskGeometry geom_;  ///< logical geometry (envelope stripped)
  std::vector<std::byte> scratch_;  ///< physical-block staging (serial path)
  IoExecutor::SleepFn sleep_fn_;    ///< every backoff routes through this
  FaultInjectingBackend* injector_ = nullptr;
  std::unique_ptr<IoExecutor> exec_;  ///< null = serial path
  mutable IoStats stats_;  ///< mutable: reaped from const wait/drain
};

/// Build a DiskArray with the whole fault-tolerance stack in one call: a
/// base backend with the right physical geometry, optionally wrapped in a
/// FaultInjectingBackend, under the given checksum/retry options. `logical`
/// is the geometry the layers above will see.
std::unique_ptr<DiskArray> make_disk_array(BackendKind kind,
                                           const DiskGeometry& logical,
                                           const std::string& file_dir,
                                           const DiskArrayOptions& opts = {},
                                           const FaultPlan& plan = {});

}  // namespace emcgm::pdm
