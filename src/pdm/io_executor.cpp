#include "pdm/io_executor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "pdm/checksum.h"
#include "pdm/disk_array.h"
#include "pdm/fault.h"

namespace emcgm::pdm {

IoExecutor::IoExecutor(StorageBackend& backend, std::uint32_t num_workers,
                       bool checksums, const RetryPolicy& retry, SleepFn sleep,
                       DepthFn depth)
    : backend_(backend),
      checksums_(checksums),
      retry_(retry),
      sleep_(std::move(sleep)),
      depth_(std::move(depth)) {
  const std::uint32_t D = backend_.geometry().num_disks;
  EMCGM_CHECK_MSG(num_workers >= 1 && num_workers <= D,
                  "executor wants 1.." << D << " workers, got "
                                       << num_workers);
  queues_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  disk_counters_.reserve(D);
  for (std::uint32_t d = 0; d < D; ++d) {
    disk_counters_.push_back(std::make_unique<DiskCounters>());
  }
  workers_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { run_worker(w); });
  }
}

IoExecutor::~IoExecutor() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& q : queues_) {
    // Take the queue lock so a worker between its predicate check and its
    // wait cannot miss the notification.
    { std::lock_guard<std::mutex> lk(q->mu); }
    q->cv.notify_all();
  }
  for (auto& t : workers_) t.join();
}

std::uint64_t IoExecutor::submit_read(std::span<const ReadSlot> slots) {
  Op* op = nullptr;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ops_.push_back(std::make_unique<Op>());
    op = ops_.back().get();
    op->seq = seq = next_seq_++;
    op->is_write = false;
    op->blocks = static_cast<std::uint32_t>(slots.size());
    op->full_stripe = slots.size() == backend_.geometry().num_disks;
    op->pending = op->blocks;
    pending_blocks_ += slots.size();
    if (depth_) depth_(pending_blocks_);
  }
  const std::uint32_t W = num_workers();
  for (std::uint32_t i = 0; i < slots.size(); ++i) {
    Job job;
    job.op = op;
    job.slot = i;
    job.disk = slots[i].addr.disk;
    job.track = slots[i].addr.track;
    job.is_write = false;
    job.out = slots[i].out;
    auto& q = *queues_[job.disk % W];
    {
      std::lock_guard<std::mutex> lk(q.mu);
      q.jobs.push_back(std::move(job));
    }
    q.cv.notify_one();
  }
  return seq;
}

std::uint64_t IoExecutor::submit_write(std::span<const WriteSlot> slots) {
  Op* op = nullptr;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ops_.push_back(std::make_unique<Op>());
    op = ops_.back().get();
    op->seq = seq = next_seq_++;
    op->is_write = true;
    op->blocks = static_cast<std::uint32_t>(slots.size());
    op->full_stripe = slots.size() == backend_.geometry().num_disks;
    op->pending = op->blocks;
    pending_blocks_ += slots.size();
    if (depth_) depth_(pending_blocks_);
  }
  const std::uint32_t W = num_workers();
  for (std::uint32_t i = 0; i < slots.size(); ++i) {
    Job job;
    job.op = op;
    job.slot = i;
    job.disk = slots[i].addr.disk;
    job.track = slots[i].addr.track;
    job.is_write = true;
    // Write-behind: the caller's buffer may be a stack temporary (striping
    // tail pads, message staging) — own a copy for the job's lifetime.
    job.payload.assign(slots[i].data.begin(), slots[i].data.end());
    auto& q = *queues_[job.disk % W];
    {
      std::lock_guard<std::mutex> lk(q.mu);
      q.jobs.push_back(std::move(job));
    }
    q.cv.notify_one();
  }
  return seq;
}

void IoExecutor::run_worker(std::uint32_t w) {
  auto& q = *queues_[w];
  std::vector<std::byte> scratch(
      checksums_ ? backend_.geometry().block_bytes : 0);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(q.mu);
      q.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) || !q.jobs.empty();
      });
      if (q.jobs.empty()) return;  // stop requested, queue drained
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
    }
    std::exception_ptr err;
    try {
      execute(job, scratch, *disk_counters_[job.disk]);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      if (err) job.op->errors.emplace_back(job.slot, err);
      --job.op->pending;
      --pending_blocks_;
      if (depth_) depth_(pending_blocks_);
    }
    done_cv_.notify_all();
  }
}

void IoExecutor::execute(Job& job, std::vector<std::byte>& scratch,
                         DiskCounters& counters) {
  if (!job.is_write) {
    // Mirrors the serial DiskArray::read_one retry loop, with the counters
    // redirected into this disk's shard.
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        if (!checksums_) {
          backend_.read_block(job.disk, job.track, job.out);
        } else {
          backend_.read_block(job.disk, job.track, scratch);
          unseal_block(job.disk, job.track, scratch, job.out);
        }
        return;
      } catch (const IoError& e) {
        if (e.kind() == IoErrorKind::kCorruption) {
          counters.corruptions.fetch_add(1, std::memory_order_relaxed);
          throw;
        }
        if (e.kind() != IoErrorKind::kTransient) throw;
        if (attempt >= retry_.max_attempts) {
          throw IoError(IoErrorKind::kExhausted,
                        std::string("read gave up after ") +
                            std::to_string(attempt) +
                            " attempts: " + e.what());
        }
        counters.retries.fetch_add(1, std::memory_order_relaxed);
        sleep_(retry_.backoff_us(attempt));
      }
    }
  }
  std::span<const std::byte> phys = job.payload;
  if (checksums_) {
    seal_block(job.disk, job.track, job.payload, scratch);
    phys = scratch;
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      backend_.write_block(job.disk, job.track, phys);
      return;
    } catch (const IoError& e) {
      if (e.kind() != IoErrorKind::kTransient) throw;
      if (attempt >= retry_.max_attempts) {
        throw IoError(IoErrorKind::kExhausted,
                      std::string("write gave up after ") +
                          std::to_string(attempt) + " attempts: " + e.what());
      }
      counters.retries.fetch_add(1, std::memory_order_relaxed);
      sleep_(retry_.backoff_us(attempt));
    }
  }
}

bool IoExecutor::prefix_complete_locked(std::uint64_t ticket) const {
  for (const auto& op : ops_) {
    if (op->seq > ticket) break;
    if (op->pending != 0) return false;
  }
  return true;
}

void IoExecutor::fold_shards_locked(IoStats& stats) {
  std::uint64_t retries = 0, corruptions = 0;
  for (const auto& d : disk_counters_) {
    retries += d->retries.load(std::memory_order_relaxed);
    corruptions += d->corruptions.load(std::memory_order_relaxed);
  }
  stats.retries += retries - folded_retries_;
  stats.corruptions += corruptions - folded_corruptions_;
  folded_retries_ = retries;
  folded_corruptions_ = corruptions;
}

std::exception_ptr IoExecutor::reap_locked(IoStats& stats, bool count_ops) {
  std::exception_ptr first;
  while (!ops_.empty() && ops_.front()->pending == 0) {
    std::unique_ptr<Op> op = std::move(ops_.front());
    ops_.pop_front();
    if (!first && !op->errors.empty()) {
      // Canonically-first failure: smallest slot of the smallest op seq.
      auto it = std::min_element(
          op->errors.begin(), op->errors.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      first = it->second;
    }
    if (!first && count_ops) {
      // Op-level stats in submission order; ops at/after the canonical
      // error are dropped — the serial path would never have reached them.
      if (op->is_write) {
        stats.write_ops += 1;
        stats.blocks_written += op->blocks;
      } else {
        stats.read_ops += 1;
        stats.blocks_read += op->blocks;
      }
      if (op->full_stripe) stats.full_stripe_ops += 1;
    }
  }
  fold_shards_locked(stats);
  return first;
}

void IoExecutor::wait_and_reap(std::uint64_t ticket, IoStats& stats) {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] { return prefix_complete_locked(ticket); });
    err = reap_locked(stats, /*count_ops=*/true);
    if (err) {
      // Quiesce fully before re-raising so the caller sees a stable array
      // (and the error is cleared for whoever retries). Later ops lose to
      // the canonical first error and are not counted — the serial path
      // would never have reached them.
      done_cv_.wait(lk, [&] { return pending_blocks_ == 0; });
      (void)reap_locked(stats, /*count_ops=*/false);
      ops_.clear();
    }
  }
  if (err) std::rethrow_exception(err);
}

void IoExecutor::wait(std::uint64_t ticket, IoStats& stats) {
  wait_and_reap(ticket, stats);
}

void IoExecutor::drain(IoStats& stats) {
  std::uint64_t last;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    last = next_seq_ - 1;
  }
  wait_and_reap(last, stats);
}

}  // namespace emcgm::pdm
