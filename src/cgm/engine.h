// Abstract execution engine for CGM programs. Two implementations:
//  * NativeEngine (cgm/native_engine.h): an in-memory CGM machine — the
//    paper's conventional parallel comparator (Fig. 3a).
//  * EmEngine (emcgm/em_engine.h): the paper's contribution — Algorithms
//    2 and 3, simulating the v virtual processors on p real processors with
//    D disks each, all communication carried by parallel disk I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/comm_stats.h"
#include "cgm/config.h"
#include "cgm/message.h"
#include "cgm/program.h"
#include "net/net_stats.h"
#include "pdm/io_stats.h"

namespace emcgm::obs {
class Tracer;
class MetricsRegistry;
}  // namespace emcgm::obs

namespace emcgm::cgm {

/// One logical value distributed over the v virtual processors: parts[j] is
/// virtual processor j's partition, as raw bytes.
struct PartitionSet {
  std::vector<std::vector<std::byte>> parts;
};

struct RunResult {
  std::uint64_t app_rounds = 0;   ///< compound supersteps of the CGM program
  std::uint64_t comm_steps = 0;   ///< physical communication supersteps
                                  ///< (2x app rounds under balanced routing)
  CommStats comm;                 ///< per physical superstep
  pdm::IoStats io;                ///< summed over real processors (EM only)
  /// I/O per physical superstep (EM engine; the final entry covers output
  /// collection). Sums to `io`.
  std::vector<pdm::IoStats> io_per_step;
  /// Simulated-network wire activity (EM engine with cfg.net.enabled).
  net::NetStats net;
  /// Node fail-over events absorbed during the run (EM engine with
  /// cfg.net.failover): each one re-assigned a dead processor's virtual
  /// processors to survivors and replayed from the last commit.
  std::uint64_t failovers = 0;
  /// Processors re-admitted by the rejoin handshake (EM engine with
  /// cfg.net.rejoin): each one caught up from the last committed checkpoint
  /// and took store groups back at a superstep barrier.
  std::uint64_t rejoins = 0;
  double wall_s = 0.0;

  RunResult& operator+=(const RunResult& o) {
    app_rounds += o.app_rounds;
    comm_steps += o.comm_steps;
    comm += o.comm;
    io += o.io;
    io_per_step.insert(io_per_step.end(), o.io_per_step.begin(),
                       o.io_per_step.end());
    net += o.net;
    failovers += o.failovers;
    rejoins += o.rejoins;
    wall_s += o.wall_s;
    return *this;
  }
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const MachineConfig& config() const = 0;

  /// Run the program to completion. inputs[k].parts[j] is input slot k of
  /// virtual processor j (each PartitionSet must have exactly v parts).
  /// Returns the output slots, one PartitionSet per slot index used.
  virtual std::vector<PartitionSet> run(const Program& program,
                                        std::vector<PartitionSet> inputs) = 0;

  /// Statistics of the most recent run().
  virtual const RunResult& last_result() const = 0;

  /// Statistics accumulated over every run() since construction — a chained
  /// pipeline of programs is one longer CGM algorithm, so its lambda and I/O
  /// are the accumulated values.
  virtual const RunResult& total() const = 0;

  virtual void reset_totals() = 0;

  /// Phase-scoped span trace of this engine, or nullptr when observability
  /// is off (config().obs.trace). Spans accumulate across run() calls.
  virtual const obs::Tracer* tracer() const { return nullptr; }

  /// Per-physical-superstep metrics snapshots, or nullptr when
  /// observability is off.
  virtual const obs::MetricsRegistry* metrics() const { return nullptr; }
};

/// Accumulate per-superstep communication statistics from a delivered batch
/// of messages (shared by both engines).
void record_step_comm(StepComm& step, const std::vector<Message>& delivered,
                      std::uint32_t v);

}  // namespace emcgm::cgm
