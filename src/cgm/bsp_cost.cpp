#include "cgm/bsp_cost.h"

#include <algorithm>

#include "util/error.h"

namespace emcgm::cgm {

BspCost evaluate_bsp_cost(const RunResult& run, const BspParams& params) {
  BspCost cost;
  cost.supersteps = run.comm_steps;
  for (const auto& s : run.comm.steps) {
    const double h = static_cast<double>(s.h_bytes());
    cost.t_comm += std::max(params.L, params.g * h);
    // BSP* charges every message as if it were at least b bytes long
    // (paper §6.1: w = max(L, g * (sum of ceil-penalized lengths))). We
    // approximate per-processor by penalizing the superstep's h with the
    // short-message ratio: a superstep whose minimum message is already
    // >= b pays no penalty.
    double h_star = h;
    if (params.bsp_star_b > 0 && s.messages > 0 &&
        s.min_msg_bytes < params.bsp_star_b) {
      // Worst case: all of h was sent in min-sized messages.
      const double factor = static_cast<double>(params.bsp_star_b) /
                            static_cast<double>(std::max<std::uint64_t>(
                                s.min_msg_bytes, 1));
      h_star = h * factor;
    }
    cost.t_comm_star += std::max(params.L, params.g * h_star);
  }
  cost.t_io = params.G * static_cast<double>(run.io.total_ops());
  cost.t_sync = params.L * static_cast<double>(run.comm_steps);
  return cost;
}

bool conforming(const CommStats& comm, std::uint64_t h_bound,
                std::uint64_t* observed) {
  std::uint64_t max_h = 0;
  for (const auto& s : comm.steps) max_h = std::max(max_h, s.h_bytes());
  if (observed) *observed = max_h;
  return max_h <= h_bound;
}

std::uint64_t bsp_star_block_size(std::uint64_t h_min, std::uint32_t v) {
  EMCGM_CHECK(v >= 1);
  const std::uint64_t per = h_min / v;
  const std::uint64_t slack = (static_cast<std::uint64_t>(v) - 1) / 2;
  return per > slack ? per - slack : 0;
}

std::uint64_t lemma1_min_problem_bytes(std::uint64_t b_min,
                                       std::uint32_t v) {
  EMCGM_CHECK(v >= 1);
  const std::uint64_t v2 = static_cast<std::uint64_t>(v) * v;
  return v2 * b_min + v2 * (v - 1) / 2;
}

double bsp_star_compliance(const CommStats& comm, std::uint64_t b) {
  std::uint64_t total = 0, ok = 0;
  for (const auto& s : comm.steps) {
    if (s.messages == 0) continue;
    total += s.messages;
    // Per-superstep aggregate: if even the smallest message meets b, all
    // of the superstep's messages do.
    if (s.min_msg_bytes >= b) ok += s.messages;
  }
  return total == 0 ? 1.0 : static_cast<double>(ok) / total;
}

double corollary1_compliance(const CommStats& comm, std::uint32_t v) {
  EMCGM_CHECK(v >= 1);
  std::uint64_t total = 0, ok = 0;
  for (const auto& s : comm.steps) {
    if (s.messages == 0) continue;
    ++total;
    // Theorem 1 bounds round-A messages by their sender's volume over v
    // and round-B messages by their receiver's volume over v; a recorded
    // superstep satisfies the corollary when its smallest message meets
    // the weaker of the two (relaxed by the fragment-header and rounding
    // slack of the implementation — a factor-2 margin).
    const std::uint64_t per = std::min(s.min_sent, s.min_recv) / v;
    const std::uint64_t slack = (static_cast<std::uint64_t>(v) + 1) / 2 + 1;
    const std::uint64_t want = per > slack ? (per - slack) / 2 : 0;
    if (s.min_msg_bytes >= want) ++ok;
  }
  return total == 0 ? 1.0 : static_cast<double>(ok) / total;
}

OptimalityRatios optimality_ratios(const RunResult& run,
                                   const BspParams& params, double t_comp,
                                   double t_seq, std::uint32_t p) {
  EMCGM_CHECK(t_seq > 0 && p >= 1);
  const BspCost cost = evaluate_bsp_cost(run, params);
  const double per_proc = t_seq / p;
  OptimalityRatios r;
  r.phi = t_comp / per_proc;
  r.xi = cost.t_comm / per_proc;
  r.eta = cost.t_io / per_proc;
  return r;
}

}  // namespace emcgm::cgm
