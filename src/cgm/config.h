// Machine configuration shared by both engines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos_config.h"
#include "net/net_fault.h"
#include "obs/obs_config.h"
#include "pdm/backend.h"
#include "pdm/fault.h"
#include "pdm/geometry.h"
#include "util/error.h"

namespace emcgm::cgm {

/// How the EM engine lays generated messages out on the disks.
enum class MsgLayout {
  /// Paper Fig. 2: fixed-size slots per (src, dst) pair, staggered so that
  /// writes by source and reads by destination are both fully parallel.
  /// Requires a bound on the per-pair message size — guaranteed by balanced
  /// routing (Lemma 2) or by an explicit program hint.
  kStaggeredMatrix,
  /// Chained striped extents with an in-memory O(v^2) directory; handles
  /// arbitrary (unbalanced) message sizes, writes fully parallel, reads pay
  /// at most one partial op per message.
  kChained,
};

struct MachineConfig {
  std::uint32_t v = 4;  ///< virtual processors (the simulated CGM machine)
  std::uint32_t p = 1;  ///< real processors (EM-CGM target machine)

  /// Per-real-processor disk subsystem (the paper's D and B).
  pdm::DiskGeometry disk{};

  /// Async I/O worker threads per real processor's disk array
  /// (DiskArrayOptions.io_threads): 0 = the serial path, pdm::kIoThreadsAuto
  /// = min(D, hardware concurrency). With workers the engine also prefetches
  /// the next virtual processor's context and inbox during compute and
  /// drains write-behind at the superstep barrier. Outputs, IoStats,
  /// StepComm/NetStats and injected fault sequences are bit-identical across
  /// all values (DESIGN.md §12).
  std::uint32_t io_threads = 0;

  /// How many virtual processors ahead the engine prefetches contexts and
  /// inboxes while one vproc computes (async arrays only, io_threads > 0;
  /// the serial path has no pipeline to feed). 1 — the default, and the
  /// behavior before this knob existed — keeps exactly the next vproc in
  /// flight; deeper windows keep the per-disk executor queues fed when a
  /// single vproc's reads cannot saturate D disks. Every depth is safe by
  /// the same Observation-2 band-disjointness argument as depth 1 (prefetch
  /// targets are this superstep's read regions, never its write targets) and
  /// produces bit-identical outputs and IoStats — reads are merely *issued*
  /// earlier, reaped by the same barriers. The window is additionally
  /// bounded by M when memory_bytes > 0: at most
  /// max(1, memory_bytes / (2 * avg context bytes)) vprocs ahead, so
  /// prefetch buffers never dominate the memory the model grants.
  std::uint32_t prefetch_depth = 1;

  /// Local memory per real processor in bytes (the paper's M); 0 disables
  /// the residency check. The EM engine verifies context + inbox + outbox of
  /// the virtual processor being simulated fit in M.
  std::size_t memory_bytes = 0;

  /// Replace every application h-relation by two balanced rounds
  /// (Algorithm 1 / Lemma 2).
  bool balanced_routing = false;

  MsgLayout layout = MsgLayout::kChained;

  /// Fixed slot capacity (bytes) per (src, dst) pair for the staggered
  /// matrix layout. 0 derives a bound from the input size assuming balanced
  /// routing (2N/v^2 plus fragment-header slack, Lemma 2); a message larger
  /// than its slot is a hard error. Ignored by the chained layout.
  std::size_t staggered_slot_bytes = 0;

  /// Observation 2: reuse one physical copy of the staggered message matrix
  /// by alternating orientation between supersteps.
  bool single_copy_matrix = false;

  pdm::BackendKind backend = pdm::BackendKind::kMemory;
  std::string file_dir;  ///< directory for BackendKind::kFile

  /// Multi-node file layout: when non-empty (exactly p entries), real
  /// processor r's disks live under their own directory subtree
  /// file_roots[r] — emulating p separate machines with separate
  /// filesystems — instead of file_dir + "/proc<r>". A fail-over then
  /// remounts the dead host's subtree from the survivor, crossing a real
  /// filesystem boundary. BackendKind::kFile only.
  std::vector<std::string> file_roots{};

  /// Run real processors on std::thread, one per host, with crossing
  /// batches posted into SimNetwork's per-link mailboxes as each store
  /// group finishes (delivery overlaps compute; see net.mailbox_pump).
  /// Guaranteed bit-identical to the serial schedule — outputs, IoStats,
  /// StepComm, and NetStats alike (DESIGN.md §10).
  bool use_threads = false;

  std::uint64_t seed = 1;  ///< seed for randomized algorithm steps

  // ---- fault tolerance (EM engine) -------------------------------------
  /// Wrap every physical block in a CRC32C envelope verified on read; bit
  /// rot, torn writes and misdirected blocks surface as IoError(kCorruption)
  /// instead of silent wrong answers. Costs kEnvelopeBytes per block.
  bool checksums = false;
  /// Write a versioned commit record after every physical superstep; a run
  /// that dies mid-superstep can then continue via EmEngine::resume() from
  /// the last committed boundary. Incompatible with single_copy_matrix
  /// (Observation-2 slot reuse clobbers the inbox a replay would re-read).
  bool checkpointing = false;
  /// Retry schedule for transient block faults (applied per block inside
  /// every parallel I/O).
  pdm::RetryPolicy retry{};
  /// Deterministic fault injection applied to every real processor's disks
  /// (tests and robustness benchmarks; default: no faults).
  pdm::FaultPlan fault{};
  /// Per-real-processor disk fault plans. Empty = every processor uses
  /// `fault`; otherwise must have exactly p entries. This is how a test
  /// kills *one* machine's disks mid-superstep without touching the others.
  std::vector<pdm::FaultPlan> fault_per_proc{};
  /// Simulated-network configuration (EM engine, p > 1): framed checksummed
  /// packets over fallible links with reliable delivery, plus optional node
  /// fail-over from the last committed checkpoint.
  net::NetConfig net{};

  /// Observability (obs/): phase-scoped tracing + per-superstep metrics.
  /// Off by default; disabled runs allocate nothing on hot paths and are
  /// bit-identical — outputs and every stat counter — to a pre-obs build.
  obs::ObsConfig obs{};

  /// Chaos harness (chaos/): runtime invariant layer, per-disk capacity
  /// quotas, and the checkpoint-version write knob. Off by default; a
  /// disabled run is bit-identical to a pre-chaos build.
  chaos::ChaosConfig chaos{};

  /// Reject an invalid configuration up front with a typed
  /// IoError(kConfig) — called by both engines' constructors, so a bad
  /// machine never fails deep inside a run. (IoError derives from Error;
  /// callers catching Error still catch these.)
  void validate() const {
    auto check = [](bool ok, const std::string& what) {
      if (!ok) throw IoError(IoErrorKind::kConfig, what);
    };
    check(v >= 1, "need at least one virtual processor");
    check(p >= 1 && p <= v, "need 1 <= p <= v");
    check(v % p == 0, "p must divide v (paper §2.2 exposition assumption)");
    check(!(checkpointing && single_copy_matrix),
          "checkpointing cannot replay a superstep under the Observation-2"
          " single-copy matrix (outgoing slots overwrite the inbox being"
          " replayed)");
    check(retry.max_attempts >= 1, "retry policy needs at least one attempt");
    check(fault_per_proc.empty() || fault_per_proc.size() == p,
          "fault_per_proc must be empty or have exactly p entries");
    check(!(io_threads > 0 && disk.num_disks == 0),
          "io_threads > 0 with zero disks: there is nothing for the async"
          " executor to serve");
    check(!net.failover || net.enabled, "net.failover requires net.enabled");
    check(!net.failover || checkpointing,
          "net.failover re-assigns work from the last committed checkpoint;"
          " enable checkpointing");
    check(!net.failover || net.heartbeat_miss_threshold >= 1,
          "heartbeat_miss_threshold == 0 would declare every processor dead"
          " at the first heartbeat round; need >= 1");
    check(net.retry.max_attempts >= 1,
          "network retry policy needs at least one attempt");
    check(!net.enabled || net.mtu_bytes > 0, "network MTU must be positive");
    check(!net.rejoin || net.failover,
          "net.rejoin re-admits processors through the fail-over machinery;"
          " enable net.failover");
    check(net.schedule == routing::ScheduleKind::kDirect || p == 1 ||
              net.enabled,
          "a non-direct collective schedule routes through the simulated"
          " network; enable net.enabled");
    check(net.schedule != routing::ScheduleKind::kCustom ||
              !net.custom_schedule_json.empty(),
          "schedule kCustom needs net.custom_schedule_json (the JSON a"
          " CommSchedule::to_json emits; see tools/schedule_check --file)");
    check(net.custom_schedule_json.empty() ||
              net.schedule == routing::ScheduleKind::kCustom,
          "net.custom_schedule_json is set but net.schedule is not kCustom;"
          " refusing to silently ignore the supplied schedule");
    check(prefetch_depth >= 1,
          "prefetch_depth == 0 would starve the pipeline; use 1 for the"
          " minimal (legacy) one-ahead window");
    for (const net::NodeEvent& e : net.fault.fail_stops) {
      check(e.proc < p, "fail_stops names a processor outside 0..p-1");
    }
    for (const net::NodeEvent& e : net.fault.rejoins) {
      check(e.proc < p, "rejoins names a processor outside 0..p-1");
      bool killed_before =
          net.fault.fail_stop_proc == e.proc && net.fault.fail_stop_at_step <
                                                    e.step;
      for (const net::NodeEvent& k : net.fault.fail_stops) {
        killed_before = killed_before || (k.proc == e.proc && k.step < e.step);
      }
      check(killed_before,
            "rejoin_at_step scheduled for a node never killed before that"
            " step: a reboot needs a preceding fail-stop");
    }
    check(chaos.disk_quota_per_proc.empty() ||
              chaos.disk_quota_per_proc.size() == p,
          "chaos.disk_quota_per_proc must be empty or have exactly p entries");
    check(chaos.ckpt_write_version == 0 || chaos.ckpt_write_version == 2 ||
              chaos.ckpt_write_version == 3,
          "chaos.ckpt_write_version must be 0 (current), 2, or 3");
    check(!chaos.invariants || chaos.watchdog_steps >= 1,
          "chaos.watchdog_steps == 0 would trip the no-progress watchdog on"
          " the first superstep; need >= 1");
    check(file_roots.empty() || file_roots.size() == p,
          "file_roots must be empty or have exactly p entries");
    check(file_roots.empty() || backend == pdm::BackendKind::kFile,
          "file_roots requires BackendKind::kFile");
    disk.validate();
  }
};

}  // namespace emcgm::cgm
