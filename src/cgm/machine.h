// User-facing entry point: a Machine owns an engine (native CGM or EM-CGM
// simulation) and provides typed scatter/gather between ordinary vectors
// and distributed partitions.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cgm/engine.h"
#include "util/math.h"

namespace emcgm::cgm {

enum class EngineKind {
  kNative,  ///< in-memory CGM machine (Fig. 3a comparator)
  kEm,      ///< EM-CGM simulation (the paper's Algorithms 2–3)
};

/// A vector of T distributed over the v virtual processors in even
/// contiguous chunks (virtual processor j holds global indices
/// [chunk_begin(n,v,j), chunk_begin(n,v,j+1))).
template <typename T>
struct DistVec {
  PartitionSet set;
  std::uint64_t total = 0;

  std::vector<T> part(std::uint32_t j) const {
    return bytes_to_vec<T>(set.parts.at(j));
  }
};

class Machine {
 public:
  Machine(EngineKind kind, MachineConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Engine& engine() { return *engine_; }
  const MachineConfig& config() const { return engine_->config(); }
  std::uint32_t v() const { return config().v; }

  std::vector<PartitionSet> run(const Program& program,
                                std::vector<PartitionSet> inputs) {
    return engine_->run(program, std::move(inputs));
  }

  const RunResult& last_result() const { return engine_->last_result(); }
  const RunResult& total() const { return engine_->total(); }
  void reset_totals() { engine_->reset_totals(); }

  /// Split data into v even contiguous chunks.
  template <typename T>
  DistVec<T> scatter(std::span<const T> data) const {
    const std::uint32_t vv = v();
    DistVec<T> dv;
    dv.total = data.size();
    dv.set.parts.resize(vv);
    for (std::uint32_t j = 0; j < vv; ++j) {
      const auto begin = chunk_begin(data.size(), vv, j);
      const auto count = chunk_size(data.size(), vv, j);
      auto bytes = std::as_bytes(data.subspan(begin, count));
      dv.set.parts[j].assign(bytes.begin(), bytes.end());
    }
    return dv;
  }

  template <typename T>
  DistVec<T> scatter(const std::vector<T>& data) const {
    return scatter(std::span<const T>(data));
  }

  /// Concatenate all partitions back into one vector.
  template <typename T>
  std::vector<T> gather(const DistVec<T>& dv) const {
    std::vector<T> out;
    out.reserve(dv.total);
    for (const auto& part : dv.set.parts) {
      auto v = bytes_to_vec<T>(part);
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  /// Wrap an engine output slot as a typed distributed vector.
  template <typename T>
  static DistVec<T> as_dist(PartitionSet set) {
    DistVec<T> dv;
    dv.total = 0;
    for (const auto& p : set.parts) dv.total += p.size() / sizeof(T);
    dv.set = std::move(set);
    return dv;
  }

 private:
  std::unique_ptr<Engine> engine_;
};

}  // namespace emcgm::cgm
