// The unit of CGM computation: a Program is the per-virtual-processor code,
// executed once per compound superstep. Its per-processor state must
// round-trip through the byte archives, because the EM engine destroys the
// in-memory state after every superstep and reloads it from disk — exactly
// the context swapping of the paper's Algorithm 2.
#pragma once

#include <memory>
#include <string>

#include "util/archive.h"

namespace emcgm::cgm {

class ProcCtx;

/// Serializable per-virtual-processor state.
class ProcState {
 public:
  virtual ~ProcState() = default;
  virtual void save(WriteArchive& ar) const = 0;
  virtual void load(ReadArchive& ar) = 0;
};

/// A CGM algorithm (or one stage of a pipeline of them). The object itself
/// is immutable during a run and shared by all virtual processors; all
/// mutable data lives in the ProcState.
class Program {
 public:
  virtual ~Program() = default;

  virtual std::string name() const = 0;

  virtual std::unique_ptr<ProcState> make_state() const = 0;

  /// One compound superstep: consume ctx.inbox(), compute, ctx.send(...).
  /// At superstep 0 the inbox is empty and ctx.input(k) is available; the
  /// program must absorb inputs into its state during round 0.
  virtual void round(ProcCtx& ctx, ProcState& state) const = 0;

  /// Queried after each round. Must return the same value on every virtual
  /// processor of a superstep (CGM termination is globally synchronous); the
  /// engines verify this. A round in which done() becomes true must not
  /// have sent messages.
  virtual bool done(const ProcCtx& ctx, const ProcState& state) const = 0;
};

/// Convenience adaptor: programs with a concrete state type S providing
/// default construction plus save(WriteArchive&) const / load(ReadArchive&).
template <typename S>
class ProgramT : public Program {
 public:
  std::unique_ptr<ProcState> make_state() const final {
    return std::make_unique<Wrap>();
  }

  void round(ProcCtx& ctx, ProcState& state) const final {
    round(ctx, static_cast<Wrap&>(state).s);
  }

  bool done(const ProcCtx& ctx, const ProcState& state) const final {
    return done(ctx, static_cast<const Wrap&>(state).s);
  }

  virtual void round(ProcCtx& ctx, S& state) const = 0;
  virtual bool done(const ProcCtx& ctx, const S& state) const = 0;

 private:
  struct Wrap final : ProcState {
    S s{};
    void save(WriteArchive& ar) const override { s.save(ar); }
    void load(ReadArchive& ar) override { s.load(ar); }
  };
};

}  // namespace emcgm::cgm
