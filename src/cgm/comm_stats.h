// Communication accounting in CGM/BSP terms: each communication round is an
// h-relation; we record per-round maxima so the Theorem 1 message-size
// bounds are observable quantities, not just proofs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace emcgm::cgm {

/// One physical communication superstep (a balanced round counts as its own
/// superstep; an unbalanced app round is a single superstep).
struct StepComm {
  std::uint64_t messages = 0;     ///< non-empty messages delivered
  std::uint64_t bytes = 0;        ///< total payload bytes
  std::uint64_t max_sent = 0;     ///< max over procs of bytes sent
  std::uint64_t max_recv = 0;     ///< max over procs of bytes received
  /// min over *sending* procs of bytes sent / min over *receiving* procs
  /// of bytes received (the per-processor volumes the Theorem 1 round-A /
  /// round-B bounds divide by); max() when no proc sent/received.
  std::uint64_t min_sent = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t min_recv = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t min_msg_bytes = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_msg_bytes = 0;

  // Wire-level cost of realizing this h-relation on the simulated network
  // (0 when messages are handed over by fiat, i.e. net disabled). `bytes`
  // above stays the *delivered payload* — a lossy link that forces three
  // transmissions of a message realizes the same h-relation; the tax lands
  // here.
  std::uint64_t wire_bytes = 0;
  std::uint64_t retransmissions = 0;

  /// h of this superstep: max over procs of data sent or received.
  std::uint64_t h_bytes() const {
    return max_sent > max_recv ? max_sent : max_recv;
  }

  // Thread-safety discipline (DESIGN.md §10/§11): StepComm is entirely
  // *barrier-owned* — only ever filled at the superstep barrier, single-
  // threaded, from the per-group outcomes the worker threads left behind
  // (and from SimNetwork's canonically shard-merged round statistics).
  // Worker threads never touch a StepComm — which is why use_threads changes
  // no field here, bit for bit (asserted by the threaded-determinism sweeps
  // and ObsThreaded.ShardCountersBarrierInvariant).
  friend bool operator==(const StepComm&, const StepComm&) = default;
};

struct CommStats {
  std::vector<StepComm> steps;  ///< one entry per physical comm superstep

  std::uint64_t rounds() const { return steps.size(); }

  std::uint64_t total_bytes() const {
    std::uint64_t t = 0;
    for (const auto& s : steps) t += s.bytes;
    return t;
  }

  std::uint64_t total_messages() const {
    std::uint64_t t = 0;
    for (const auto& s : steps) t += s.messages;
    return t;
  }

  std::uint64_t max_h_bytes() const {
    std::uint64_t m = 0;
    for (const auto& s : steps) m = s.h_bytes() > m ? s.h_bytes() : m;
    return m;
  }

  CommStats& operator+=(const CommStats& o) {
    steps.insert(steps.end(), o.steps.begin(), o.steps.end());
    return *this;
  }
};

}  // namespace emcgm::cgm
