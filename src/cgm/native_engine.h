// In-memory CGM machine: all v virtual processors and all messages live in
// RAM. This is the conventional-parallel comparator of the paper's Fig. 3a
// and the reference implementation that the EM engine must match
// byte-for-byte (test suite invariant 4).
#pragma once

#include <memory>

#include "cgm/engine.h"

namespace emcgm::cgm {

class NativeEngine final : public Engine {
 public:
  explicit NativeEngine(MachineConfig cfg);
  ~NativeEngine() override;

  const MachineConfig& config() const override { return cfg_; }

  std::vector<PartitionSet> run(const Program& program,
                                std::vector<PartitionSet> inputs) override;

  const RunResult& last_result() const override { return last_; }
  const RunResult& total() const override { return total_; }
  void reset_totals() override { total_ = RunResult{}; }

  const obs::Tracer* tracer() const override { return tracer_.get(); }
  const obs::MetricsRegistry* metrics() const override {
    return metrics_.get();
  }

 private:
  MachineConfig cfg_;
  RunResult last_;
  RunResult total_;
  // Observability (cfg_.obs.trace; both null when off). The native machine
  // has no disks: spans cover compute and delivery, metrics rows carry the
  // per-round h-relation with zero I/O.
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
};

}  // namespace emcgm::cgm
