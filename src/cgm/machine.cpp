#include "cgm/machine.h"

#include "cgm/native_engine.h"
#include "emcgm/em_engine.h"

namespace emcgm::cgm {

Machine::Machine(EngineKind kind, MachineConfig cfg) {
  switch (kind) {
    case EngineKind::kNative:
      engine_ = std::make_unique<NativeEngine>(std::move(cfg));
      break;
    case EngineKind::kEm:
      engine_ = std::make_unique<em::EmEngine>(std::move(cfg));
      break;
  }
  EMCGM_CHECK(engine_ != nullptr);
}

Machine::~Machine() = default;

}  // namespace emcgm::cgm
