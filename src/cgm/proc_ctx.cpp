#include "cgm/proc_ctx.h"

#include <algorithm>

namespace emcgm::cgm {

void ProcCtx::send(std::uint32_t dst, std::vector<std::byte> payload) {
  EMCGM_CHECK_MSG(dst < nprocs_, "send to out-of-range processor " << dst);
  if (payload.empty()) return;
  outbox_bytes_ += payload.size();
  // Multiple sends to the same destination within a superstep concatenate:
  // a CGM round delivers at most one logical message per (src, dst) pair,
  // which is what the fixed-slot disk layout of the EM engine relies on.
  for (auto& m : outbox_) {
    if (m.dst == dst) {
      m.payload.insert(m.payload.end(), payload.begin(), payload.end());
      return;
    }
  }
  outbox_.push_back(Message{pid_, dst, std::move(payload)});
}

void ProcCtx::begin_superstep(std::uint64_t step,
                              std::vector<Message> inbox) {
  superstep_ = step;
  inbox_ = std::move(inbox);
  std::sort(inbox_.begin(), inbox_.end(),
            [](const Message& a, const Message& b) { return a.src < b.src; });
  outbox_.clear();
  outbox_bytes_ = 0;
}

std::vector<Message> ProcCtx::take_outbox() {
  std::vector<Message> out = std::move(outbox_);
  outbox_.clear();
  outbox_bytes_ = 0;
  return out;
}

std::size_t ProcCtx::resident_bytes() const {
  std::size_t n = 0;
  for (const auto& m : inbox_) n += m.payload.size();
  for (const auto& m : outbox_) n += m.payload.size();
  for (const auto& o : outputs_) n += o.size();
  for (const auto& i : inputs_) n += i.size();
  return n;
}

}  // namespace emcgm::cgm
