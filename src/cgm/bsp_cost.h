// BSP-family cost accounting and the paper's §5 conversions.
//
// The paper's Appendix (§6.1-§6.4) defines the BSP, BSP*, CGM, and
// EM-{BSP,BSP*,CGM} cost models and the c-optimality criteria used in
// Theorems 2-3. This module evaluates those cost expressions over the
// statistics an engine records, so a run can be judged against the model:
//
//   T_comm(BSP)  = sum_i max(L, g * h_i)              (h_i in bytes here)
//   T_comm(BSP*) = sum_i max(L, g * h_i * ceil-penalty(b))   [messages
//                  shorter than the block parameter b are charged as b]
//   T_io(EM)     = G * (parallel I/O ops)
//
// §5 items (1)-(3): a "conforming" BSP algorithm — one whose every
// communication superstep is bounded by an h-relation — converts to a
// BSP* algorithm with minimum message size b = h_min/v - (v-1)/2 via
// BalancedRouting (Corollary 1), and to an EM algorithm preserving
// c-optimality. conforming_* below verify the preconditions on recorded
// runs, and bsp_star_block_size gives the b the conversion guarantees.
#pragma once

#include <cstdint>

#include "cgm/comm_stats.h"
#include "cgm/engine.h"

namespace emcgm::cgm {

/// Machine parameters of the BSP-like cost models (paper §6.1-§6.3).
/// Times are in abstract "computation unit" ticks; g is per byte here
/// (the paper's per-item g times the item size).
struct BspParams {
  double g = 1.0;    ///< router throughput cost per byte
  double L = 100.0;  ///< superstep latency / synchronization time
  double G = 1000.0; ///< time per parallel I/O of D*B bytes (EM models)
  std::uint64_t bsp_star_b = 0;  ///< BSP* block parameter b (bytes)
};

/// Cost report for one recorded run.
struct BspCost {
  double t_comm = 0;      ///< BSP communication time
  double t_comm_star = 0; ///< BSP* communication time (b-penalized)
  double t_io = 0;        ///< EM I/O time (G per parallel op)
  double t_sync = 0;      ///< lambda * L
  std::uint64_t supersteps = 0;
};

/// Evaluate the model costs over a run's statistics.
BspCost evaluate_bsp_cost(const RunResult& run, const BspParams& params);

/// A recorded run is "conforming" (paper §5) when every communication
/// superstep's h (max bytes sent/received by one processor) is bounded by
/// h_bound. Returns the largest observed h for diagnostics via *observed.
bool conforming(const CommStats& comm, std::uint64_t h_bound,
                std::uint64_t* observed = nullptr);

/// Corollary 1: the minimum message size BalancedRouting guarantees when
/// each processor's per-superstep volume is at least h_min bytes over v
/// processors: b = h_min/v - (v-1)/2 (0 if the guarantee is vacuous).
std::uint64_t bsp_star_block_size(std::uint64_t h_min, std::uint32_t v);

/// Lemma 1: the minimum problem size (bytes) that assures minimum message
/// size b_min on v processors: N >= v^2 * b_min + v^2 (v-1) / 2.
std::uint64_t lemma1_min_problem_bytes(std::uint64_t b_min, std::uint32_t v);

/// Fraction of physical messages in a recorded run meeting the BSP* block
/// parameter b (1.0 when every non-empty message carried >= b bytes).
double bsp_star_compliance(const CommStats& comm, std::uint64_t b);

/// Per-round Corollary 1 compliance: the fraction of non-empty
/// communication supersteps whose minimum message meets that round's own
/// guarantee h/v - (v-1)/2 (within the fragment-header slack). Balanced
/// runs of conforming algorithms score 1.0; raw h-relations with skewed
/// or tiny messages do not.
double corollary1_compliance(const CommStats& comm, std::uint32_t v);

/// c-optimality check (paper §6.4, Definition 1): given the sequential
/// work time t_seq (same ticks as the params), a run is c-optimal when
/// computation <= c * t_seq / p and both communication and I/O are o(.) of
/// it — evaluated here as simple ratios the caller can threshold.
struct OptimalityRatios {
  double phi = 0;  ///< computation / (t_seq / p)      — want <= c
  double xi = 0;   ///< communication / (t_seq / p)    — want -> 0
  double eta = 0;  ///< I/O / (t_seq / p)              — want -> 0
};

OptimalityRatios optimality_ratios(const RunResult& run,
                                   const BspParams& params, double t_comp,
                                   double t_seq, std::uint32_t p);

}  // namespace emcgm::cgm
