// Per-virtual-processor view of the machine during one compound superstep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cgm/message.h"
#include "util/archive.h"
#include "util/error.h"

namespace emcgm::cgm {

class ProcCtx {
 public:
  ProcCtx(std::uint32_t pid, std::uint32_t nprocs, std::uint64_t seed)
      : pid_(pid), nprocs_(nprocs), seed_(seed) {}

  std::uint32_t pid() const { return pid_; }
  std::uint32_t nprocs() const { return nprocs_; }
  std::uint64_t superstep() const { return superstep_; }

  /// Run-level seed; programs derive per-processor/per-round streams from it
  /// so results are engine-independent.
  std::uint64_t seed() const { return seed_; }

  // ----------------------------------------------------------- messaging --

  /// Queue a message for delivery at the start of the next superstep.
  /// Empty payloads are dropped (an h-relation only counts real data).
  void send(std::uint32_t dst, std::vector<std::byte> payload);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_items(std::uint32_t dst, std::span<const T> items) {
    if (items.empty()) return;
    auto b = std::as_bytes(items);
    send(dst, std::vector<std::byte>(b.begin(), b.end()));
  }

  template <typename T>
  void send_vec(std::uint32_t dst, const std::vector<T>& items) {
    send_items<T>(dst, std::span<const T>(items));
  }

  /// Messages received in the communication phase of the previous
  /// superstep, sorted by source (at most one message per source — multiple
  /// sends to the same destination are concatenated in send order).
  const std::vector<Message>& inbox() const { return inbox_; }

  /// All inbox payloads concatenated (in source order) as items of type T.
  template <typename T>
  std::vector<T> recv_concat() const {
    std::size_t bytes = 0;
    for (const auto& m : inbox_) bytes += m.payload.size();
    EMCGM_CHECK(bytes % sizeof(T) == 0);
    std::vector<T> out;
    out.reserve(bytes / sizeof(T));
    for (const auto& m : inbox_) {
      auto v = bytes_to_vec<T>(m.payload);
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  /// Payload from a specific source (empty vector if none).
  template <typename T>
  std::vector<T> recv_from(std::uint32_t src) const {
    for (const auto& m : inbox_) {
      if (m.src == src) return bytes_to_vec<T>(m.payload);
    }
    return {};
  }

  // ------------------------------------------------------- input / output --

  /// Input slot k; only valid during superstep 0.
  std::span<const std::byte> input(std::size_t k = 0) const {
    EMCGM_CHECK_MSG(superstep_ == 0,
                    "input() is only available during round 0");
    EMCGM_CHECK(k < inputs_.size());
    return inputs_[k];
  }

  template <typename T>
  std::vector<T> input_items(std::size_t k = 0) const {
    return bytes_to_vec<T>(input(k));
  }

  std::size_t num_inputs() const { return inputs_.size(); }

  /// Output slot k (created on demand); collected by the engine when the
  /// program finishes.
  std::vector<std::byte>& output(std::size_t k = 0) {
    if (k >= outputs_.size()) outputs_.resize(k + 1);
    return outputs_[k];
  }

  template <typename T>
  void set_output(const std::vector<T>& items, std::size_t k = 0) {
    output(k) = vec_to_bytes(items);
  }

  // ------------------------------------------------- engine-side interface --

  /// Engine: install state for the upcoming superstep.
  void begin_superstep(std::uint64_t step, std::vector<Message> inbox);
  /// Engine: take the queued outgoing messages (clears the outbox).
  std::vector<Message> take_outbox();
  /// Engine: install / clear input partitions.
  void set_inputs(std::vector<std::vector<std::byte>> inputs) {
    inputs_ = std::move(inputs);
  }
  void clear_inputs() {
    inputs_.clear();
    inputs_.shrink_to_fit();
  }
  std::vector<std::vector<std::byte>>& outputs() { return outputs_; }
  const std::vector<std::vector<std::byte>>& outputs() const {
    return outputs_;
  }
  /// Engine: bytes queued for sending so far this superstep.
  std::size_t outbox_bytes() const { return outbox_bytes_; }
  /// Engine: resident footprint of inbox + outputs (for the M check).
  std::size_t resident_bytes() const;

 private:
  std::uint32_t pid_;
  std::uint32_t nprocs_;
  std::uint64_t seed_;
  std::uint64_t superstep_ = 0;
  std::vector<std::vector<std::byte>> inputs_;
  std::vector<std::vector<std::byte>> outputs_;
  std::vector<Message> inbox_;
  std::vector<Message> outbox_;
  std::size_t outbox_bytes_ = 0;
};

}  // namespace emcgm::cgm
