// Point-to-point messages exchanged in a CGM communication round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emcgm::cgm {

struct Message {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<std::byte> payload;
};

}  // namespace emcgm::cgm
