#include "cgm/native_engine.h"

#include <algorithm>

#include "cgm/proc_ctx.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/balanced_routing.h"
#include "util/error.h"
#include "util/timer.h"

namespace emcgm::cgm {

namespace {

// Guard against programs that never report done().
constexpr std::uint64_t kMaxRounds = 1u << 20;

}  // namespace

void record_step_comm(StepComm& step, const std::vector<Message>& delivered,
                      std::uint32_t v) {
  std::vector<std::uint64_t> sent(v, 0), recv(v, 0);
  for (const auto& m : delivered) {
    const std::uint64_t n = m.payload.size();
    if (n == 0) continue;
    step.messages += 1;
    step.bytes += n;
    sent[m.src] += n;
    recv[m.dst] += n;
    step.min_msg_bytes = std::min(step.min_msg_bytes, n);
    step.max_msg_bytes = std::max(step.max_msg_bytes, n);
  }
  for (std::uint32_t i = 0; i < v; ++i) {
    step.max_sent = std::max(step.max_sent, sent[i]);
    step.max_recv = std::max(step.max_recv, recv[i]);
    if (sent[i] > 0) step.min_sent = std::min(step.min_sent, sent[i]);
    if (recv[i] > 0) step.min_recv = std::min(step.min_recv, recv[i]);
  }
}

NativeEngine::NativeEngine(MachineConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  if (cfg_.obs.trace) {
    tracer_ = std::make_unique<obs::Tracer>(1);
    metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
}

NativeEngine::~NativeEngine() = default;

std::vector<PartitionSet> NativeEngine::run(
    const Program& program, std::vector<PartitionSet> inputs) {
  Timer timer;
  const std::uint32_t v = cfg_.v;
  RunResult result;

  // Build the virtual processors.
  std::vector<ProcCtx> ctxs;
  ctxs.reserve(v);
  std::vector<std::unique_ptr<ProcState>> states;
  states.reserve(v);
  for (std::uint32_t j = 0; j < v; ++j) {
    ctxs.emplace_back(j, v, cfg_.seed);
    states.push_back(program.make_state());
  }

  // Distribute input slots.
  for (const auto& slot : inputs) {
    EMCGM_CHECK_MSG(slot.parts.size() == v,
                    "input PartitionSet must have v parts");
  }
  for (std::uint32_t j = 0; j < v; ++j) {
    std::vector<std::vector<std::byte>> mine;
    mine.reserve(inputs.size());
    for (auto& slot : inputs) mine.push_back(std::move(slot.parts[j]));
    ctxs[j].set_inputs(std::move(mine));
  }

  std::vector<std::vector<Message>> inboxes(v);
  bool all_done = false;

  obs::Tracer* const tr = tracer_.get();
  obs::TraceShard* const shard = tr ? &tr->host_shard(0) : nullptr;
  std::uint64_t phys = 0;  ///< physical superstep counter (metrics rows)
  Timer step_timer;
  auto record_metrics = [&](std::uint64_t round, const char* phase_label,
                            const StepComm* comm) {
    if (!metrics_) return;
    obs::SuperstepMetrics m;
    m.step = phys;
    m.round = round;
    m.phase = phase_label;
    if (comm) {
      m.has_comm = true;
      m.comm = *comm;
    }
    m.wall_s = step_timer.elapsed_s();
    m.end_ns = tr->now_ns();
    metrics_->record(std::move(m));
    step_timer.reset();
  };

  for (std::uint64_t round = 0; !all_done; ++round) {
    EMCGM_CHECK_MSG(round < kMaxRounds,
                    "program '" << program.name() << "' exceeded "
                                << kMaxRounds << " rounds");

    obs::SpanScope round_span(tr, shard, obs::SpanKind::kSuperstep, 0, 0, -1,
                              -1, phys, round);

    // Computation phase of the compound superstep.
    std::vector<std::vector<Message>> outboxes(v);
    bool any_done = false;
    all_done = true;
    for (std::uint32_t j = 0; j < v; ++j) {
      const std::size_t inbox_msgs = inboxes[j].size();
      obs::SpanScope span(tr, shard, obs::SpanKind::kCompute, 0, j, -1, j,
                          phys, round);
      ctxs[j].begin_superstep(round, std::move(inboxes[j]));
      inboxes[j].clear();
      program.round(ctxs[j], *states[j]);
      outboxes[j] = ctxs[j].take_outbox();
      span.set_aux(inbox_msgs, outboxes[j].size());
      const bool d = program.done(ctxs[j], *states[j]);
      any_done = any_done || d;
      all_done = all_done && d;
    }
    EMCGM_CHECK_MSG(any_done == all_done,
                    "program '" << program.name()
                                << "' disagreed on termination at round "
                                << round);
    if (round == 0) {
      for (auto& c : ctxs) c.clear_inputs();
    }
    result.app_rounds += 1;

    if (all_done) {
      for (std::uint32_t j = 0; j < v; ++j) {
        EMCGM_CHECK_MSG(outboxes[j].empty(),
                        "program '" << program.name()
                                    << "' sent messages in its final round");
      }
      record_metrics(round, "final", nullptr);
      ++phys;
      break;
    }

    // Communication phase: either one direct h-relation or the two balanced
    // rounds of Algorithm 1.
    if (!cfg_.balanced_routing) {
      StepComm step;
      std::vector<Message> delivered;
      for (auto& ob : outboxes) {
        for (auto& m : ob) delivered.push_back(std::move(m));
      }
      record_step_comm(step, delivered, v);
      {
        obs::SpanScope span(tr, shard, obs::SpanKind::kDeliver, 0, 0, -1, -1,
                            phys, round);
        span.set_aux(step.messages, step.bytes);
        for (auto& m : delivered) inboxes[m.dst].push_back(std::move(m));
      }
      result.comm.steps.push_back(step);
      result.comm_steps += 1;
      record_metrics(round, "compute", &step);
      ++phys;
    } else {
      // Round A: source -> intermediate.
      StepComm step_a;
      std::vector<std::vector<Message>> inter_inbox(v);
      {
        std::vector<Message> delivered;
        for (std::uint32_t i = 0; i < v; ++i) {
          for (auto& m : routing::encode_phase_a(v, i, outboxes[i])) {
            delivered.push_back(std::move(m));
          }
        }
        record_step_comm(step_a, delivered, v);
        obs::SpanScope span(tr, shard, obs::SpanKind::kDeliver, 0, 0, -1, -1,
                            phys, round);
        span.set_aux(step_a.messages, step_a.bytes);
        for (auto& m : delivered) inter_inbox[m.dst].push_back(std::move(m));
      }
      result.comm.steps.push_back(step_a);
      record_metrics(round, "compute", &step_a);
      ++phys;

      // Round B: intermediate -> final destination.
      StepComm step_b;
      {
        std::vector<Message> delivered;
        for (std::uint32_t k = 0; k < v; ++k) {
          for (auto& m :
               routing::transform_intermediate(v, k, inter_inbox[k])) {
            delivered.push_back(std::move(m));
          }
        }
        record_step_comm(step_b, delivered, v);
        obs::SpanScope span(tr, shard, obs::SpanKind::kDeliver, 0, 0, -1, -1,
                            phys, round);
        span.set_aux(step_b.messages, step_b.bytes);
        std::vector<std::vector<Message>> final_phys(v);
        for (auto& m : delivered) final_phys[m.dst].push_back(std::move(m));
        for (std::uint32_t j = 0; j < v; ++j) {
          inboxes[j] = routing::decode_phase_b(v, j, final_phys[j]);
        }
      }
      result.comm.steps.push_back(step_b);
      record_metrics(round, "regroup", &step_b);
      ++phys;
    }
  }

  // Collect output slots.
  std::size_t num_slots = 0;
  for (const auto& c : ctxs) num_slots = std::max(num_slots, c.outputs().size());
  std::vector<PartitionSet> outputs(num_slots);
  for (auto& slot : outputs) slot.parts.resize(v);
  for (std::uint32_t j = 0; j < v; ++j) {
    auto& outs = ctxs[j].outputs();
    for (std::size_t k = 0; k < outs.size(); ++k) {
      outputs[k].parts[j] = std::move(outs[k]);
    }
  }

  result.wall_s = timer.elapsed_s();
  last_ = result;
  total_ += result;
  return outputs;
}

}  // namespace emcgm::cgm
