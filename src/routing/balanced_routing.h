// Algorithm 1 (BalancedRouting, after Bader et al. [10] as used in the
// paper): an arbitrary h-relation is replaced by two rounds of balanced
// communication. Byte l of the message src -> dst is assigned to bin
// (src + dst + l) mod v; bin k travels src -> k in round A, is regrouped by
// final destination at k, and travels k -> dst in round B. Theorem 1: every
// round-A and round-B message carries total-bytes/v +- O(v) payload.
//
// The three functions below are pure per-processor transformations, so both
// engines share them: the native engine applies them centrally, the EM
// engine runs transform_intermediate as the compute phase of an extra
// physical superstep (Lemma 2 doubles the superstep count).
//
// Wire format of a physical payload (both phases): a sequence of fragment
// records {u32 orig_src, u32 final_dst, u64 total_len, u64 frag_len,
// frag_len bytes}. Headers are bookkeeping overhead of O(v) per processor
// pair and are excluded from the balance analysis (data_bytes below).
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/message.h"

namespace emcgm::routing {

/// A piece of an application message in transit.
struct Fragment {
  std::uint32_t orig_src = 0;
  std::uint32_t final_dst = 0;
  std::uint64_t total_len = 0;  ///< length of the whole application message
  std::vector<std::byte> data;
};

/// Round-A binning at source processor `src`: splits the application outbox
/// into v bins; result[k] holds the fragments bound for intermediate k.
/// Bins for k == src stay local but are still produced (the engines
/// short-circuit self-sends uniformly).
std::vector<std::vector<Fragment>> bin_phase_a(
    std::uint32_t v, std::uint32_t src,
    const std::vector<cgm::Message>& outbox);

/// Serialize one bin into a physical message payload.
cgm::Message pack_fragments(std::uint32_t src, std::uint32_t dst,
                            const std::vector<Fragment>& frags);

/// Parse a physical payload back into fragments.
std::vector<Fragment> unpack_fragments(const cgm::Message& msg);

/// Phase A at `src`: outbox -> physical round-A messages (one per
/// intermediate with non-empty bin).
std::vector<cgm::Message> encode_phase_a(std::uint32_t v, std::uint32_t src,
                                         const std::vector<cgm::Message>& outbox);

/// At intermediate k: regroup the fragments received in round A by final
/// destination and emit the physical round-B messages.
std::vector<cgm::Message> transform_intermediate(
    std::uint32_t v, std::uint32_t k, const std::vector<cgm::Message>& inbox);

/// At final destination `dst`: reassemble the original application messages
/// from the round-B fragment streams. The byte-level round-robin assignment
/// is deterministic, so each fragment's bytes scatter back to positions
/// l0, l0+v, l0+2v, ... of the original message.
std::vector<cgm::Message> decode_phase_b(std::uint32_t v, std::uint32_t dst,
                                         const std::vector<cgm::Message>& inbox);

/// Payload bytes net of fragment headers in a physical message (what the
/// Theorem 1 bounds govern).
std::uint64_t data_bytes(const cgm::Message& physical);

}  // namespace emcgm::routing
