// The schedule verifier: a small model checker over flow locations.
//
// A schedule is an explicit data structure, so its safety properties can be
// decided exactly before the engine moves a byte: simulate every flow's
// location step by step and reject any schedule that breaks the delivery or
// balance contract. Soundness rests on the engine's store-and-forward
// executing *literally* the verified plan: a flow moves iff a transfer
// lists it, whole, one hop per step, so the simulation here and the bytes
// at run time cannot disagree (DESIGN.md §15).
#include <algorithm>
#include <map>
#include <sstream>

#include "routing/schedule.h"
#include "util/error.h"

namespace emcgm::routing {

namespace {

[[noreturn]] void reject(const CommSchedule& s, const std::string& what) {
  throw IoError(IoErrorKind::kConfig,
                std::string("schedule verifier (") + to_string(s.kind) +
                    "): " + what);
}

std::string flow_name(const Flow& f) {
  std::string s("(");
  s += std::to_string(f.first);
  s += " -> ";
  s += std::to_string(f.second);
  s += ")";
  return s;
}

}  // namespace

BalanceReport verify_schedule(const CommSchedule& s,
                              const WeightMatrix& weights) {
  if (s.p == 0) reject(s, "empty machine");
  if (weights.size() != s.p) {
    reject(s, "weight matrix must be p x p");
  }
  for (const auto& row : weights) {
    if (row.size() != s.p) reject(s, "weight matrix must be p x p");
  }
  std::vector<char> live(s.p, 0);
  for (std::size_t i = 0; i < s.hosts.size(); ++i) {
    const std::uint32_t h = s.hosts[i];
    if (h >= s.p) reject(s, "live host " + std::to_string(h) + " out of range");
    if (i > 0 && s.hosts[i] <= s.hosts[i - 1]) {
      reject(s, "live hosts must be ascending and unique");
    }
    live[h] = 1;
  }
  for (std::uint32_t o = 0; o < s.p; ++o) {
    for (std::uint32_t f = 0; f < s.p; ++f) {
      if (weights[o][f] != 0 && (!live[o] || !live[f] || o == f)) {
        reject(s, "weight on a dead or degenerate pair " + flow_name({o, f}));
      }
    }
  }
  // Termination, part 1: the step list must be finite and small. Every
  // built-in is O(n) steps; 4 * (n + 1) leaves headroom for hand-written
  // schedules without admitting unbounded ones.
  if (s.steps.size() > 4 * (s.hosts.size() + 1)) {
    reject(s, "step count " + std::to_string(s.steps.size()) +
                  " exceeds the termination bound 4 * (live hosts + 1)");
  }

  // The h-relation parameter of this weight matrix: the largest per-host
  // total sent or received weight. The balance contract is per-step weight
  // <= slack * h.
  std::uint64_t h_rel = 0;
  {
    std::vector<std::uint64_t> sent(s.p, 0), recv(s.p, 0);
    for (std::uint32_t o = 0; o < s.p; ++o) {
      for (std::uint32_t f = 0; f < s.p; ++f) {
        sent[o] += weights[o][f];
        recv[f] += weights[o][f];
      }
    }
    for (std::uint32_t q = 0; q < s.p; ++q) {
      h_rel = std::max({h_rel, sent[q], recv[q]});
    }
  }

  BalanceReport report;
  report.steps = s.steps.size();
  report.h = h_rel;

  // loc[o][f]: where flow (o, f) currently sits; kNowhere until it exists.
  constexpr std::uint32_t kArrivedMark = 0xFFFFFFFF;
  std::vector<std::vector<std::uint32_t>> loc(
      s.p, std::vector<std::uint32_t>(s.p, 0));
  for (std::uint32_t o = 0; o < s.p; ++o) {
    for (std::uint32_t f = 0; f < s.p; ++f) loc[o][f] = o;
  }

  for (std::size_t si = 0; si < s.steps.size(); ++si) {
    const ScheduleStep& step = s.steps[si];
    const std::string at = " (step " + std::to_string(si) + ")";
    std::map<std::uint32_t, std::uint32_t> out_deg, in_deg;
    std::map<std::uint32_t, std::uint64_t> sent_w, recv_w;
    // Flows claimed this step, to detect a flow listed by two transfers
    // (which the engine would execute as a duplicated byte stream).
    std::vector<std::vector<char>> claimed(s.p,
                                           std::vector<char>(s.p, 0));
    struct Move {
      std::uint32_t o, f, dst;
    };
    std::vector<Move> moves;
    for (const Transfer& t : step.transfers) {
      if (t.src >= s.p || t.dst >= s.p || !live[t.src] || !live[t.dst]) {
        reject(s, "transfer endpoint out of the live host set" + at);
      }
      if (t.src == t.dst) {
        reject(s, "self-send on host " + std::to_string(t.src) + at);
      }
      if (t.flows.empty()) {
        reject(s, "transfer " + std::to_string(t.src) + " -> " +
                      std::to_string(t.dst) + " carries no flows" + at);
      }
      report.transfers += 1;
      report.max_degree = std::max(report.max_degree, ++out_deg[t.src]);
      report.max_degree = std::max(report.max_degree, ++in_deg[t.dst]);
      for (const Flow& fl : t.flows) {
        const auto [o, f] = fl;
        if (o >= s.p || f >= s.p || !live[o] || !live[f] || o == f) {
          reject(s, "flow " + flow_name(fl) +
                        " is not a live ordered pair" + at);
        }
        if (claimed[o][f]) {
          reject(s, "flow " + flow_name(fl) +
                        " claimed by two transfers in one step" + at);
        }
        claimed[o][f] = 1;
        if (loc[o][f] == kArrivedMark) {
          reject(s, "flow " + flow_name(fl) +
                        " moved again after delivery (duplicate)" + at);
        }
        if (loc[o][f] != t.src) {
          reject(s, "transfer from " + std::to_string(t.src) +
                        " claims flow " + flow_name(fl) + " held at " +
                        std::to_string(loc[o][f]) + at);
        }
        const std::uint64_t w = weights[o][f];
        sent_w[t.src] += w;
        recv_w[t.dst] += w;
        if (t.src != o) report.relay_weight += w;
        moves.push_back({o, f, t.dst});
      }
    }
    if (report.max_degree > s.max_degree) {
      reject(s, "per-host transfer degree " +
                    std::to_string(report.max_degree) +
                    " exceeds the declared max_degree " +
                    std::to_string(s.max_degree) + at);
    }
    for (const auto& [host, w] : sent_w) {
      report.max_step_sent = std::max(report.max_step_sent, w);
      if (static_cast<double>(w) > s.slack * static_cast<double>(h_rel)) {
        std::ostringstream os;
        os << "host " << host << " sends " << w << " > slack " << s.slack
           << " x h " << h_rel << at;
        reject(s, os.str());
      }
    }
    for (const auto& [host, w] : recv_w) {
      report.max_step_recv = std::max(report.max_step_recv, w);
      if (static_cast<double>(w) > s.slack * static_cast<double>(h_rel)) {
        std::ostringstream os;
        os << "host " << host << " receives " << w << " > slack " << s.slack
           << " x h " << h_rel << at;
        reject(s, os.str());
      }
    }
    // All transfers within a step are concurrent: apply the moves after
    // checking them all, so a two-hop relay within one step is impossible.
    for (const Move& mv : moves) {
      loc[mv.o][mv.f] = mv.dst == mv.f ? kArrivedMark : mv.dst;
    }
  }

  // Exactly-once, part 2 (and termination, part 2): every live ordered pair
  // must have arrived — a flow never delivered is a dropped pair, a flow
  // parked at an intermediate host is an unterminated route.
  for (std::uint32_t o = 0; o < s.p; ++o) {
    for (std::uint32_t f = 0; f < s.p; ++f) {
      if (!live[o] || !live[f] || o == f) continue;
      if (loc[o][f] != kArrivedMark) {
        reject(s, "pair " + flow_name({o, f}) + " never delivered (parked at " +
                      std::to_string(loc[o][f]) + ")");
      }
    }
  }
  return report;
}

BalanceReport verify_schedule(const CommSchedule& s) {
  if (s.p == 0) reject(s, "empty machine");
  WeightMatrix uniform(s.p, std::vector<std::uint64_t>(s.p, 0));
  for (std::uint32_t o : s.hosts) {
    for (std::uint32_t f : s.hosts) {
      if (o != f) uniform[o][f] = 1;
    }
  }
  return verify_schedule(s, uniform);
}

}  // namespace emcgm::routing
