#include "routing/balanced_routing.h"

#include <algorithm>

#include "util/archive.h"
#include "util/error.h"

namespace emcgm::routing {

namespace {

struct FragHeader {
  std::uint32_t orig_src;
  std::uint32_t final_dst;
  std::uint64_t total_len;
  std::uint64_t frag_len;
};

constexpr std::size_t kHeaderBytes = sizeof(FragHeader);

}  // namespace

std::vector<std::vector<Fragment>> bin_phase_a(
    std::uint32_t v, std::uint32_t src,
    const std::vector<cgm::Message>& outbox) {
  std::vector<std::vector<Fragment>> bins(v);
  for (const auto& msg : outbox) {
    EMCGM_CHECK(msg.src == src);
    const std::uint64_t len = msg.payload.size();
    if (len == 0) continue;
    // Byte l goes to bin (src + dst + l) mod v. Bin k therefore receives
    // bytes l0, l0+v, l0+2v, ... where l0 = (k - src - dst) mod v.
    for (std::uint32_t k = 0; k < v; ++k) {
      const std::uint64_t l0 =
          (static_cast<std::uint64_t>(k) + 2ULL * v - (src % v) -
           (msg.dst % v)) %
          v;
      if (l0 >= len) continue;
      const std::uint64_t count = (len - l0 + v - 1) / v;
      Fragment f;
      f.orig_src = src;
      f.final_dst = msg.dst;
      f.total_len = len;
      f.data.resize(count);
      for (std::uint64_t t = 0; t < count; ++t) {
        f.data[t] = msg.payload[l0 + t * v];
      }
      bins[k].push_back(std::move(f));
    }
  }
  return bins;
}

cgm::Message pack_fragments(std::uint32_t src, std::uint32_t dst,
                            const std::vector<Fragment>& frags) {
  WriteArchive ar;
  for (const auto& f : frags) {
    FragHeader h{f.orig_src, f.final_dst, f.total_len, f.data.size()};
    ar.put(h);
    ar.write_raw(f.data.data(), f.data.size());
  }
  return cgm::Message{src, dst, ar.take()};
}

std::vector<Fragment> unpack_fragments(const cgm::Message& msg) {
  std::vector<Fragment> out;
  ReadArchive ar(msg.payload);
  while (!ar.exhausted()) {
    const auto h = ar.get<FragHeader>();
    Fragment f;
    f.orig_src = h.orig_src;
    f.final_dst = h.final_dst;
    f.total_len = h.total_len;
    f.data.resize(static_cast<std::size_t>(h.frag_len));
    ar.read_raw(f.data.data(), f.data.size());
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<cgm::Message> encode_phase_a(
    std::uint32_t v, std::uint32_t src,
    const std::vector<cgm::Message>& outbox) {
  auto bins = bin_phase_a(v, src, outbox);
  std::vector<cgm::Message> physical;
  for (std::uint32_t k = 0; k < v; ++k) {
    if (bins[k].empty()) continue;
    physical.push_back(pack_fragments(src, k, bins[k]));
  }
  return physical;
}

std::vector<cgm::Message> transform_intermediate(
    std::uint32_t v, std::uint32_t k, const std::vector<cgm::Message>& inbox) {
  // Regroup every received fragment by its final destination (Step 3 of
  // Algorithm 1), then emit one round-B message per destination (Step 4).
  std::vector<std::vector<Fragment>> by_dst(v);
  for (const auto& msg : inbox) {
    for (auto& f : unpack_fragments(msg)) {
      EMCGM_CHECK(f.final_dst < v);
      by_dst[f.final_dst].push_back(std::move(f));
    }
  }
  std::vector<cgm::Message> physical;
  for (std::uint32_t j = 0; j < v; ++j) {
    if (by_dst[j].empty()) continue;
    // Deterministic order for reproducibility across engines.
    std::sort(by_dst[j].begin(), by_dst[j].end(),
              [](const Fragment& a, const Fragment& b) {
                return a.orig_src < b.orig_src;
              });
    physical.push_back(pack_fragments(k, j, by_dst[j]));
  }
  return physical;
}

std::vector<cgm::Message> decode_phase_b(
    std::uint32_t v, std::uint32_t dst,
    const std::vector<cgm::Message>& inbox) {
  // Collect fragments per original source; msg.src of a round-B physical
  // message identifies the intermediate, which determines the byte stride
  // positions.
  struct Partial {
    std::uint64_t total_len = 0;
    std::uint64_t filled = 0;
    std::vector<std::byte> data;
  };
  std::vector<Partial> partials(v);

  for (const auto& msg : inbox) {
    const std::uint32_t k = msg.src;  // intermediate processor
    for (const auto& f : unpack_fragments(msg)) {
      EMCGM_CHECK(f.final_dst == dst);
      auto& p = partials[f.orig_src];
      if (p.data.empty()) {
        p.total_len = f.total_len;
        p.data.resize(static_cast<std::size_t>(f.total_len));
      }
      EMCGM_CHECK(p.total_len == f.total_len);
      const std::uint64_t l0 =
          (static_cast<std::uint64_t>(k) + 2ULL * v - (f.orig_src % v) -
           (dst % v)) %
          v;
      for (std::uint64_t t = 0; t < f.data.size(); ++t) {
        const std::uint64_t pos = l0 + t * v;
        EMCGM_CHECK(pos < p.total_len);
        p.data[pos] = f.data[t];
      }
      p.filled += f.data.size();
    }
  }

  std::vector<cgm::Message> out;
  for (std::uint32_t i = 0; i < v; ++i) {
    auto& p = partials[i];
    if (p.data.empty()) continue;
    EMCGM_CHECK_MSG(p.filled == p.total_len,
                    "reassembly of message " << i << " -> " << dst
                                             << " incomplete: " << p.filled
                                             << " of " << p.total_len);
    out.push_back(cgm::Message{i, dst, std::move(p.data)});
  }
  return out;
}

std::uint64_t data_bytes(const cgm::Message& physical) {
  std::uint64_t data = 0;
  ReadArchive ar(physical.payload);
  while (!ar.exhausted()) {
    const auto h = ar.get<FragHeader>();
    data += h.frag_len;
    std::vector<std::byte> skip(static_cast<std::size_t>(h.frag_len));
    ar.read_raw(skip.data(), skip.size());
  }
  return data;
}

}  // namespace emcgm::routing
