#include "routing/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/error.h"

namespace emcgm::routing {

namespace {

[[noreturn]] void bad_config(const std::string& what) {
  throw IoError(IoErrorKind::kConfig, what);
}

/// Canonicalize a step: merge flows that share a (src, dst) link into one
/// transfer, sort transfers by (src, dst) and flows by (orig, fin). The
/// engine posts transfers in container order, so canonical form is what
/// keeps every replica's per-link byte stream identical.
ScheduleStep canonical_step(
    const std::map<std::pair<std::uint32_t, std::uint32_t>,
                   std::vector<Flow>>& links) {
  ScheduleStep step;
  for (const auto& [link, flows] : links) {
    Transfer t;
    t.src = link.first;
    t.dst = link.second;
    t.flows = flows;
    std::sort(t.flows.begin(), t.flows.end());
    step.transfers.push_back(std::move(t));
  }
  return step;
}

void push_nonempty(CommSchedule& s, ScheduleStep step) {
  if (!step.transfers.empty()) s.steps.push_back(std::move(step));
}

std::uint32_t observed_degree(const CommSchedule& s) {
  std::uint32_t deg = 0;
  for (const auto& step : s.steps) {
    std::map<std::uint32_t, std::uint32_t> out, in;
    for (const auto& t : step.transfers) {
      deg = std::max(deg, ++out[t.src]);
      deg = std::max(deg, ++in[t.dst]);
    }
  }
  return deg;
}

/// The single all-to-all step: one link per ordered live pair.
void gen_direct(CommSchedule& s) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>> links;
  for (std::uint32_t a : s.hosts) {
    for (std::uint32_t b : s.hosts) {
      if (a == b) continue;
      links[{a, b}].push_back({a, b});
    }
  }
  push_nonempty(s, canonical_step(links));
  s.slack = 1.0;
}

/// n-1 steps over the live ring: in step k every flow still k or more hops
/// from home moves one position forward. Each host forwards the flows of
/// exactly one orig per step, so per-step weight stays within 1.0 * h even
/// on a single-hot-spot h-relation.
void gen_ring(CommSchedule& s) {
  const auto n = static_cast<std::uint32_t>(s.hosts.size());
  for (std::uint32_t k = 1; k < n; ++k) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>> links;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t src = s.hosts[i];
      const std::uint32_t dst = s.hosts[(i + 1) % n];
      const std::uint32_t orig = s.hosts[(i + n - (k - 1)) % n];
      for (std::uint32_t d = k; d < n; ++d) {
        const std::uint32_t fin = s.hosts[(i + n - (k - 1) + d) % n];
        links[{src, dst}].push_back({orig, fin});
      }
    }
    push_nonempty(s, canonical_step(links));
  }
  s.slack = 1.0;
}

struct Machines {
  /// Live hosts grouped per machine, each group ascending; groups ordered
  /// by machine id. leaders[m] is the lowest live host of group m.
  std::vector<std::vector<std::uint32_t>> groups;
  std::vector<std::uint32_t> leaders;
  std::vector<std::uint32_t> machine_of;  ///< indexed by host id
  std::size_t max_size = 0;
};

Machines group_by_machine(const CommSchedule& s,
                          const std::vector<std::uint32_t>& machines) {
  Machines m;
  m.machine_of.assign(s.p, 0);
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_id;
  for (std::uint32_t h : s.hosts) by_id[machines[h]].push_back(h);
  for (auto& [id, hosts] : by_id) {
    for (std::uint32_t h : hosts) {
      m.machine_of[h] = static_cast<std::uint32_t>(m.groups.size());
    }
    m.leaders.push_back(hosts.front());
    m.max_size = std::max(m.max_size, hosts.size());
    m.groups.push_back(std::move(hosts));
  }
  return m;
}

/// Hierarchical steps shared by tree and hyper_systolic: the local step
/// (same-machine pairs delivered directly; crossing flows gathered onto the
/// machine leader) and the scatter step (leaders fan crossing arrivals out
/// to their members). The exchange between leaders differs per kind.
void local_step(CommSchedule& s, const Machines& m) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>> links;
  for (const auto& group : m.groups) {
    const std::uint32_t leader = group.front();
    for (std::uint32_t a : group) {
      for (std::uint32_t b : group) {
        if (a != b) links[{a, b}].push_back({a, b});
      }
      if (a == leader) continue;
      for (std::uint32_t f : s.hosts) {
        if (m.machine_of[f] != m.machine_of[a]) {
          links[{a, leader}].push_back({a, f});
        }
      }
    }
  }
  push_nonempty(s, canonical_step(links));
}

void scatter_step(CommSchedule& s, const Machines& m) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>> links;
  for (const auto& group : m.groups) {
    const std::uint32_t leader = group.front();
    for (std::uint32_t b : group) {
      if (b == leader) continue;
      for (std::uint32_t o : s.hosts) {
        if (m.machine_of[o] != m.machine_of[b]) {
          links[{leader, b}].push_back({o, b});
        }
      }
    }
  }
  push_nonempty(s, canonical_step(links));
}

/// All flows from machine mi to machine mj, in canonical order.
std::vector<Flow> machine_bundle(const Machines& m, std::size_t mi,
                                 std::size_t mj) {
  std::vector<Flow> flows;
  for (std::uint32_t o : m.groups[mi]) {
    for (std::uint32_t f : m.groups[mj]) flows.push_back({o, f});
  }
  return flows;
}

/// tree: one exchange step, every ordered leader pair its own link carrying
/// the whole machine-to-machine bundle.
void gen_tree(CommSchedule& s, const Machines& m) {
  local_step(s, m);
  const std::size_t nm = m.groups.size();
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>> links;
  for (std::size_t mi = 0; mi < nm; ++mi) {
    for (std::size_t mj = 0; mj < nm; ++mj) {
      if (mi == mj) continue;
      auto bundle = machine_bundle(m, mi, mj);
      auto& fl = links[{m.leaders[mi], m.leaders[mj]}];
      fl.insert(fl.end(), bundle.begin(), bundle.end());
    }
  }
  push_nonempty(s, canonical_step(links));
  scatter_step(s, m);
  s.slack = static_cast<double>(std::max<std::size_t>(m.max_size, 1));
}

/// hyper_systolic: the leader exchange runs Galli's two-phase strided
/// pattern over the nm leaders — ceil((nm-1)/K) hops of stride K, then K-1
/// hops of stride 1, K = ceil(sqrt(nm)) — replacing nm*(nm-1) leader links
/// with O(nm*sqrt(nm)) at the price of store-and-forward relays. With the
/// identity machine map (no file_roots) every host is its own leader and
/// this is the pure hyper-systolic all-to-all.
void gen_hyper(CommSchedule& s, const Machines& m) {
  local_step(s, m);
  const auto nm = static_cast<std::uint32_t>(m.groups.size());
  if (nm > 1) {
    const auto k = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(nm))));
    // bundle (i, j) travels d = (j - i) mod nm positions: d / K hops of
    // stride K, then d % K hops of stride 1, store-and-forwarded whole.
    const std::uint32_t a_max = (nm - 1) / k;
    for (std::uint32_t t = 1; t <= a_max; ++t) {
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>>
          links;
      for (std::uint32_t i = 0; i < nm; ++i) {
        const std::uint32_t x = (i + (t - 1) * k) % nm;
        for (std::uint32_t d = t * k; d < nm; ++d) {
          auto bundle = machine_bundle(m, i, (i + d) % nm);
          auto& fl = links[{m.leaders[x], m.leaders[(x + k) % nm]}];
          fl.insert(fl.end(), bundle.begin(), bundle.end());
        }
      }
      push_nonempty(s, canonical_step(links));
    }
    for (std::uint32_t u = 1; u < k; ++u) {
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Flow>>
          links;
      for (std::uint32_t i = 0; i < nm; ++i) {
        for (std::uint32_t d = 1; d < nm; ++d) {
          if (d % k < u) continue;
          const std::uint32_t y = (i + (d / k) * k + (u - 1)) % nm;
          auto bundle = machine_bundle(m, i, (i + d) % nm);
          auto& fl = links[{m.leaders[y], m.leaders[(y + 1) % nm]}];
          fl.insert(fl.end(), bundle.begin(), bundle.end());
        }
      }
      push_nonempty(s, canonical_step(links));
    }
    // A stride-1 relay holds bundles of up to ceil(nm / K) distinct source
    // machines at once, each bounded by its machine's sent weight.
    s.slack = static_cast<double>((nm + k - 1) / k) *
              static_cast<double>(std::max<std::size_t>(m.max_size, 1));
  } else {
    s.slack = static_cast<double>(std::max<std::size_t>(m.max_size, 1));
  }
  scatter_step(s, m);
}

}  // namespace

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kDirect:        return "direct";
    case ScheduleKind::kRing:          return "ring";
    case ScheduleKind::kTree:          return "tree";
    case ScheduleKind::kHyperSystolic: return "hyper_systolic";
    case ScheduleKind::kCustom:        return "custom";
  }
  return "unknown";
}

ScheduleKind schedule_kind_from_string(const std::string& name) {
  for (ScheduleKind k :
       {ScheduleKind::kDirect, ScheduleKind::kRing, ScheduleKind::kTree,
        ScheduleKind::kHyperSystolic, ScheduleKind::kCustom}) {
    if (name == to_string(k)) return k;
  }
  bad_config("unknown schedule '" + name +
             "' (expected direct, ring, tree, hyper_systolic, or custom)");
}

std::vector<std::uint32_t> machines_from_roots(
    std::uint32_t p, const std::vector<std::string>& roots) {
  std::vector<std::uint32_t> machines(p);
  if (roots.empty()) {
    for (std::uint32_t r = 0; r < p; ++r) machines[r] = r;
    return machines;
  }
  std::vector<std::string> parents;
  for (std::uint32_t r = 0; r < p; ++r) {
    std::string root = roots[r % roots.size()];
    while (root.size() > 1 && root.back() == '/') root.pop_back();
    const auto slash = root.find_last_of('/');
    const std::string parent =
        slash == std::string::npos ? std::string() : root.substr(0, slash);
    auto it = std::find(parents.begin(), parents.end(), parent);
    if (it == parents.end()) {
      parents.push_back(parent);
      it = std::prev(parents.end());
    }
    machines[r] = static_cast<std::uint32_t>(it - parents.begin());
  }
  return machines;
}

CommSchedule make_schedule(ScheduleKind kind, std::uint32_t p,
                           const std::vector<std::uint32_t>& live_hosts,
                           const std::vector<std::uint32_t>& machines) {
  if (p == 0) bad_config("schedule over an empty machine");
  if (machines.size() != p) {
    bad_config("machine map must name all " + std::to_string(p) +
               " processors");
  }
  CommSchedule s;
  s.kind = kind;
  s.p = p;
  s.hosts = live_hosts;
  std::sort(s.hosts.begin(), s.hosts.end());
  for (std::size_t i = 0; i < s.hosts.size(); ++i) {
    if (s.hosts[i] >= p || (i > 0 && s.hosts[i] == s.hosts[i - 1])) {
      bad_config("live host set must be unique processor ids < p");
    }
  }
  if (s.hosts.size() < 2) {
    s.max_degree = 0;
    return s;  // nothing can cross: the empty schedule
  }
  switch (kind) {
    case ScheduleKind::kDirect:
      gen_direct(s);
      break;
    case ScheduleKind::kRing:
      gen_ring(s);
      break;
    case ScheduleKind::kTree:
      gen_tree(s, group_by_machine(s, machines));
      break;
    case ScheduleKind::kHyperSystolic:
      gen_hyper(s, group_by_machine(s, machines));
      break;
    case ScheduleKind::kCustom:
      bad_config("kCustom is not a generator: load the schedule with"
                 " parse_schedule_json (NetConfig::custom_schedule_json)");
  }
  s.max_degree = observed_degree(s);
  return s;
}

// ------------------------------------------------------------------- JSON --

std::string CommSchedule::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"kind\": \"" << routing::to_string(kind) << "\",\n  \"p\": "
     << p << ",\n  \"hosts\": [";
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    os << (i ? ", " : "") << hosts[i];
  }
  os << "],\n  \"max_degree\": " << max_degree << ",\n  \"slack\": " << slack
     << ",\n  \"steps\": [";
  for (std::size_t si = 0; si < steps.size(); ++si) {
    os << (si ? ",\n    [" : "\n    [");
    for (std::size_t ti = 0; ti < steps[si].transfers.size(); ++ti) {
      const Transfer& t = steps[si].transfers[ti];
      os << (ti ? ",\n     " : "") << "{\"src\": " << t.src
         << ", \"dst\": " << t.dst << ", \"flows\": [";
      for (std::size_t fi = 0; fi < t.flows.size(); ++fi) {
        os << (fi ? ", " : "") << "[" << t.flows[fi].first << ", "
           << t.flows[fi].second << "]";
      }
      os << "]}";
    }
    os << "]";
  }
  os << (steps.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

namespace {

/// Minimal cursor parser for exactly the schedule schema: objects, arrays,
/// escape-free strings, and numbers. Mirrors the chaos-plan parser; the
/// schema is small enough that sharing one would couple the layers for no
/// gain.
struct JsonCursor {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const std::string& what) const {
    bad_config("schedule JSON: " + what);
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
  void expect(char c) {
    skip_ws();
    if (p >= end || *p != c) fail(std::string("expected '") + c + "'");
    ++p;
  }
  std::string parse_string() {
    expect('"');
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') fail("escape sequences unsupported");
      s += *p++;
    }
    expect('"');
    return s;
  }
  double parse_number() {
    skip_ws();
    char* after = nullptr;
    const double d = std::strtod(p, &after);
    if (after == p) fail("expected a number");
    p = after;
    return d;
  }
};

Transfer parse_transfer(JsonCursor& c) {
  Transfer t;
  c.expect('{');
  bool first = true;
  while (!c.peek('}')) {
    if (!first) c.expect(',');
    first = false;
    const std::string field = c.parse_string();
    c.expect(':');
    if (field == "src") {
      t.src = static_cast<std::uint32_t>(c.parse_number());
    } else if (field == "dst") {
      t.dst = static_cast<std::uint32_t>(c.parse_number());
    } else if (field == "flows") {
      c.expect('[');
      while (!c.peek(']')) {
        if (!t.flows.empty()) c.expect(',');
        c.expect('[');
        const auto o = static_cast<std::uint32_t>(c.parse_number());
        c.expect(',');
        const auto f = static_cast<std::uint32_t>(c.parse_number());
        c.expect(']');
        t.flows.push_back({o, f});
      }
      c.expect(']');
    } else {
      c.fail("unknown transfer field '" + field + "'");
    }
  }
  c.expect('}');
  return t;
}

}  // namespace

CommSchedule parse_schedule_json(const std::string& text) {
  JsonCursor c{text.data(), text.data() + text.size()};
  CommSchedule s;
  bool have_p = false;
  c.expect('{');
  bool first_key = true;
  while (!c.peek('}')) {
    if (!first_key) c.expect(',');
    first_key = false;
    const std::string key = c.parse_string();
    c.expect(':');
    if (key == "kind") {
      s.kind = schedule_kind_from_string(c.parse_string());
    } else if (key == "p") {
      s.p = static_cast<std::uint32_t>(c.parse_number());
      have_p = true;
    } else if (key == "hosts") {
      c.expect('[');
      while (!c.peek(']')) {
        if (!s.hosts.empty()) c.expect(',');
        s.hosts.push_back(static_cast<std::uint32_t>(c.parse_number()));
      }
      c.expect(']');
    } else if (key == "max_degree") {
      s.max_degree = static_cast<std::uint32_t>(c.parse_number());
    } else if (key == "slack") {
      s.slack = c.parse_number();
    } else if (key == "steps") {
      c.expect('[');
      while (!c.peek(']')) {
        if (!s.steps.empty()) c.expect(',');
        c.expect('[');
        ScheduleStep step;
        while (!c.peek(']')) {
          if (!step.transfers.empty()) c.expect(',');
          step.transfers.push_back(parse_transfer(c));
        }
        c.expect(']');
        s.steps.push_back(std::move(step));
      }
      c.expect(']');
    } else {
      c.fail("unknown key '" + key + "'");
    }
  }
  c.expect('}');
  if (!have_p || s.p == 0) {
    bad_config("schedule JSON: missing or zero \"p\"");
  }
  return s;
}

}  // namespace emcgm::routing
