// Declarative collective communication schedules for the superstep round.
//
// The simulation theorem's h-relation bound holds for *any* delivery order,
// so the shape of the communication round is a free parameter: the engine
// only needs every crossing (source host, destination host) byte stream to
// arrive exactly once before the barrier closes. A CommSchedule makes that
// shape explicit — an ordered list of steps, each a set of transfers, each
// transfer moving a set of *flows* (orig-host, fin-host) one hop — instead
// of the single hard-wired all-to-all round. Multi-hop schedules aggregate:
// a tree routes all of a machine's crossing traffic through one leader link
// and a hyper-systolic exchange (Galli) replaces the n*(n-1) direct links
// with O(n*sqrt(n)) strided hops, which is what cuts host-crossing wire
// bytes (frames, acks, headers) on multi-node `file_roots` layouts.
//
// Schedules are *data*, so they can be proven before they run: the verifier
// (schedule_verify.cpp) simulates flow locations step by step against a
// concrete h-relation weight matrix and rejects — with a typed
// IoError(kConfig), before the engine moves a byte — any schedule that
// self-sends, delivers a pair twice or never, exceeds its declared per-step
// degree, or breaks its declared h-balance slack. The engine re-derives and
// re-verifies the schedule on every membership epoch, so fail-over and
// rejoin keep the proof current.
//
// This header is dependency-light on purpose: net/net_fault.h embeds a
// ScheduleKind in NetConfig, so nothing network- or engine-side may be
// included from here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace emcgm::routing {

/// Built-in schedule generators. kDirect is today's behavior (one step,
/// every crossing pair its own link) and the default; the others trade
/// extra hops for fewer (or better-placed) links.
enum class ScheduleKind : std::uint32_t {
  kDirect = 0,         ///< single all-to-all step, one link per crossing pair
  kRing = 1,           ///< n-1 steps, each host forwards to its successor
  kTree = 2,           ///< hierarchical: gather -> leader exchange -> scatter
  kHyperSystolic = 3,  ///< hierarchical with a strided leader exchange
  /// User-supplied schedule JSON (NetConfig::custom_schedule_json), parsed
  /// with parse_schedule_json and proven by the verifier before the run
  /// starts. Not a generator: make_schedule rejects it — the engine loads
  /// the JSON itself and falls back to kDirect when a membership change
  /// invalidates the custom host set (the JSON names fixed hosts, so it
  /// cannot be re-derived for a shrunken machine).
  kCustom = 4,
};

const char* to_string(ScheduleKind kind);

/// Parse a schedule name ("direct", "ring", "tree", "hyper_systolic",
/// "custom"). Throws IoError(kConfig) on an unknown name.
ScheduleKind schedule_kind_from_string(const std::string& name);

/// A flow is one (orig host, fin host) byte stream of the superstep's
/// h-relation. Flows move as indivisible units: a transfer carries a flow
/// one hop, and store-and-forward holds it whole at the intermediate host.
using Flow = std::pair<std::uint32_t, std::uint32_t>;

/// One hop within a step: host `src` forwards every listed flow (which the
/// verifier proves is currently held at `src`) to host `dst`.
struct Transfer {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<Flow> flows;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

/// One synchronized round of transfers. Transfers within a step are
/// concurrent; the declared degree/slack bounds are per step.
struct ScheduleStep {
  std::vector<Transfer> transfers;

  friend bool operator==(const ScheduleStep&, const ScheduleStep&) = default;
};

/// A complete schedule over the live hosts of a p-processor machine, plus
/// the balance contract its generator declares (and the verifier enforces).
struct CommSchedule {
  ScheduleKind kind = ScheduleKind::kDirect;
  std::uint32_t p = 0;               ///< processor id space (hosts index it)
  std::vector<std::uint32_t> hosts;  ///< live hosts, ascending
  std::vector<ScheduleStep> steps;
  /// Max transfers any host may appear in as src (or as dst) per step.
  std::uint32_t max_degree = 0;
  /// Per-step per-host sent/received weight may reach slack * h, where h is
  /// the h-relation parameter of the verified weight matrix. Aggregating
  /// schedules declare slack > 1 (a leader forwards its whole machine).
  double slack = 1.0;

  std::size_t transfer_count() const {
    std::size_t n = 0;
    for (const auto& s : steps) n += s.transfers.size();
    return n;
  }

  /// JSON form consumed by tools/schedule_check and parse_schedule_json.
  std::string to_json() const;

  friend bool operator==(const CommSchedule&, const CommSchedule&) = default;
};

/// Machine id per processor derived from the per-host file roots: two
/// processors share a machine iff their roots share a parent directory
/// (ids dense, in order of first appearance). Empty roots — the
/// single-filesystem default — give the identity map: every processor its
/// own machine.
std::vector<std::uint32_t> machines_from_roots(
    std::uint32_t p, const std::vector<std::string>& roots);

/// Generate the built-in schedule `kind` over `live_hosts` (ascending ids
/// < p) of a machine whose host->machine placement is `machines` (size p;
/// see machines_from_roots). Pure function of its arguments, so every
/// replica of a run — any threading mode, any fail-over replay — derives
/// the same schedule for the same membership epoch.
CommSchedule make_schedule(ScheduleKind kind, std::uint32_t p,
                           const std::vector<std::uint32_t>& live_hosts,
                           const std::vector<std::uint32_t>& machines);

/// Parse a schedule from the JSON that CommSchedule::to_json emits (field
/// order free, whitespace free). Throws IoError(kConfig) on malformed input.
CommSchedule parse_schedule_json(const std::string& text);

/// What the verifier measured while proving a schedule (tools/schedule_check
/// prints this as the balance report).
struct BalanceReport {
  std::uint64_t steps = 0;
  std::uint64_t transfers = 0;
  std::uint64_t h = 0;              ///< h-relation of the weight matrix
  std::uint64_t max_step_sent = 0;  ///< worst per-host per-step sent weight
  std::uint64_t max_step_recv = 0;  ///< worst per-host per-step recv weight
  std::uint32_t max_degree = 0;     ///< worst per-host per-step transfer fan
  /// Weight moved on non-first hops — the store-and-forward tax that shows
  /// up in NetStats wire bytes but never in delivered payload.
  std::uint64_t relay_weight = 0;
};

/// Per-ordered-pair h-relation weights, indexed [orig][fin] over the full
/// processor id space (entries touching non-live hosts must be zero).
using WeightMatrix = std::vector<std::vector<std::uint64_t>>;

/// Prove the schedule against a concrete weight matrix: every live ordered
/// pair delivered exactly once (no drop, no duplicate, no move after
/// arrival), no self-sends, every transfer holds the flows it claims,
/// per-step degree <= max_degree, per-step per-host sent/recv weight
/// <= slack * h, and termination (bounded steps, all flows home at the
/// end). Throws IoError(kConfig) naming the first violation.
BalanceReport verify_schedule(const CommSchedule& schedule,
                              const WeightMatrix& weights);

/// verify_schedule against the uniform h-relation (weight 1 on every live
/// ordered pair) — the shape-level proof the engine runs pre-run and on
/// every membership epoch.
BalanceReport verify_schedule(const CommSchedule& schedule);

}  // namespace emcgm::routing
