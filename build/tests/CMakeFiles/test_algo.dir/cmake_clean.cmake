file(REMOVE_RECURSE
  "CMakeFiles/test_algo.dir/test_algo.cpp.o"
  "CMakeFiles/test_algo.dir/test_algo.cpp.o.d"
  "test_algo"
  "test_algo.pdb"
  "test_algo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
