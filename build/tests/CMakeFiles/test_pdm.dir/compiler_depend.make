# Empty compiler generated dependencies file for test_pdm.
# This may be replaced when dependencies are built.
