# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_pdm[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_param_space[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
