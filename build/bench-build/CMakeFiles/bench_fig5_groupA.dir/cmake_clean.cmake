file(REMOVE_RECURSE
  "../bench/bench_fig5_groupA"
  "../bench/bench_fig5_groupA.pdb"
  "CMakeFiles/bench_fig5_groupA.dir/bench_fig5_groupA.cpp.o"
  "CMakeFiles/bench_fig5_groupA.dir/bench_fig5_groupA.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_groupA.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
