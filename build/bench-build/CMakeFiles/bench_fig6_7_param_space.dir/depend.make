# Empty dependencies file for bench_fig6_7_param_space.
# This may be replaced when dependencies are built.
