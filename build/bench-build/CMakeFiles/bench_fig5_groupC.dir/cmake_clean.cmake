file(REMOVE_RECURSE
  "../bench/bench_fig5_groupC"
  "../bench/bench_fig5_groupC.pdb"
  "CMakeFiles/bench_fig5_groupC.dir/bench_fig5_groupC.cpp.o"
  "CMakeFiles/bench_fig5_groupC.dir/bench_fig5_groupC.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_groupC.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
