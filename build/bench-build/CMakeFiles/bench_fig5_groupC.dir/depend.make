# Empty dependencies file for bench_fig5_groupC.
# This may be replaced when dependencies are built.
