file(REMOVE_RECURSE
  "../bench/bench_cache_memory"
  "../bench/bench_cache_memory.pdb"
  "CMakeFiles/bench_cache_memory.dir/bench_cache_memory.cpp.o"
  "CMakeFiles/bench_cache_memory.dir/bench_cache_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
