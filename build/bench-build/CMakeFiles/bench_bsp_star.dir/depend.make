# Empty dependencies file for bench_bsp_star.
# This may be replaced when dependencies are built.
