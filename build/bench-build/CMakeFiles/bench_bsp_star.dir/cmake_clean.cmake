file(REMOVE_RECURSE
  "../bench/bench_bsp_star"
  "../bench/bench_bsp_star.pdb"
  "CMakeFiles/bench_bsp_star.dir/bench_bsp_star.cpp.o"
  "CMakeFiles/bench_bsp_star.dir/bench_bsp_star.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bsp_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
