# Empty dependencies file for bench_fig4_multidisk.
# This may be replaced when dependencies are built.
