file(REMOVE_RECURSE
  "../bench/bench_fig4_multidisk"
  "../bench/bench_fig4_multidisk.pdb"
  "CMakeFiles/bench_fig4_multidisk.dir/bench_fig4_multidisk.cpp.o"
  "CMakeFiles/bench_fig4_multidisk.dir/bench_fig4_multidisk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_multidisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
