# Empty dependencies file for bench_fig5_groupB.
# This may be replaced when dependencies are built.
