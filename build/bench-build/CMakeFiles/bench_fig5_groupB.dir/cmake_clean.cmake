file(REMOVE_RECURSE
  "../bench/bench_fig5_groupB"
  "../bench/bench_fig5_groupB.pdb"
  "CMakeFiles/bench_fig5_groupB.dir/bench_fig5_groupB.cpp.o"
  "CMakeFiles/bench_fig5_groupB.dir/bench_fig5_groupB.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_groupB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
