file(REMOVE_RECURSE
  "CMakeFiles/gis_pipeline.dir/gis_pipeline.cpp.o"
  "CMakeFiles/gis_pipeline.dir/gis_pipeline.cpp.o.d"
  "gis_pipeline"
  "gis_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
