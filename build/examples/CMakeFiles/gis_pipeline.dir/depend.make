# Empty dependencies file for gis_pipeline.
# This may be replaced when dependencies are built.
