# Empty dependencies file for em_vs_baseline.
# This may be replaced when dependencies are built.
