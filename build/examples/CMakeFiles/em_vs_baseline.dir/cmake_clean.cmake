file(REMOVE_RECURSE
  "CMakeFiles/em_vs_baseline.dir/em_vs_baseline.cpp.o"
  "CMakeFiles/em_vs_baseline.dir/em_vs_baseline.cpp.o.d"
  "em_vs_baseline"
  "em_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
