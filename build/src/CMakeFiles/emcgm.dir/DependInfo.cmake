
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/param_space.cpp" "src/CMakeFiles/emcgm.dir/algo/param_space.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/algo/param_space.cpp.o.d"
  "/root/repo/src/algo/permute.cpp" "src/CMakeFiles/emcgm.dir/algo/permute.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/algo/permute.cpp.o.d"
  "/root/repo/src/algo/primitives.cpp" "src/CMakeFiles/emcgm.dir/algo/primitives.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/algo/primitives.cpp.o.d"
  "/root/repo/src/algo/sort.cpp" "src/CMakeFiles/emcgm.dir/algo/sort.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/algo/sort.cpp.o.d"
  "/root/repo/src/algo/transpose.cpp" "src/CMakeFiles/emcgm.dir/algo/transpose.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/algo/transpose.cpp.o.d"
  "/root/repo/src/baseline/em_mergesort.cpp" "src/CMakeFiles/emcgm.dir/baseline/em_mergesort.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/baseline/em_mergesort.cpp.o.d"
  "/root/repo/src/baseline/em_permute.cpp" "src/CMakeFiles/emcgm.dir/baseline/em_permute.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/baseline/em_permute.cpp.o.d"
  "/root/repo/src/baseline/em_transpose.cpp" "src/CMakeFiles/emcgm.dir/baseline/em_transpose.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/baseline/em_transpose.cpp.o.d"
  "/root/repo/src/cgm/bsp_cost.cpp" "src/CMakeFiles/emcgm.dir/cgm/bsp_cost.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/cgm/bsp_cost.cpp.o.d"
  "/root/repo/src/cgm/machine.cpp" "src/CMakeFiles/emcgm.dir/cgm/machine.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/cgm/machine.cpp.o.d"
  "/root/repo/src/cgm/native_engine.cpp" "src/CMakeFiles/emcgm.dir/cgm/native_engine.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/cgm/native_engine.cpp.o.d"
  "/root/repo/src/cgm/proc_ctx.cpp" "src/CMakeFiles/emcgm.dir/cgm/proc_ctx.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/cgm/proc_ctx.cpp.o.d"
  "/root/repo/src/emcgm/context_store.cpp" "src/CMakeFiles/emcgm.dir/emcgm/context_store.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/emcgm/context_store.cpp.o.d"
  "/root/repo/src/emcgm/em_engine.cpp" "src/CMakeFiles/emcgm.dir/emcgm/em_engine.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/emcgm/em_engine.cpp.o.d"
  "/root/repo/src/emcgm/message_store.cpp" "src/CMakeFiles/emcgm.dir/emcgm/message_store.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/emcgm/message_store.cpp.o.d"
  "/root/repo/src/geom/convex_hull.cpp" "src/CMakeFiles/emcgm.dir/geom/convex_hull.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/convex_hull.cpp.o.d"
  "/root/repo/src/geom/dominance.cpp" "src/CMakeFiles/emcgm.dir/geom/dominance.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/dominance.cpp.o.d"
  "/root/repo/src/geom/generators.cpp" "src/CMakeFiles/emcgm.dir/geom/generators.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/generators.cpp.o.d"
  "/root/repo/src/geom/lower_envelope.cpp" "src/CMakeFiles/emcgm.dir/geom/lower_envelope.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/lower_envelope.cpp.o.d"
  "/root/repo/src/geom/maxima3d.cpp" "src/CMakeFiles/emcgm.dir/geom/maxima3d.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/maxima3d.cpp.o.d"
  "/root/repo/src/geom/nearest_neighbor.cpp" "src/CMakeFiles/emcgm.dir/geom/nearest_neighbor.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/nearest_neighbor.cpp.o.d"
  "/root/repo/src/geom/next_element.cpp" "src/CMakeFiles/emcgm.dir/geom/next_element.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/next_element.cpp.o.d"
  "/root/repo/src/geom/rect_union.cpp" "src/CMakeFiles/emcgm.dir/geom/rect_union.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/rect_union.cpp.o.d"
  "/root/repo/src/geom/segment_stab.cpp" "src/CMakeFiles/emcgm.dir/geom/segment_stab.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/segment_stab.cpp.o.d"
  "/root/repo/src/geom/separability.cpp" "src/CMakeFiles/emcgm.dir/geom/separability.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/geom/separability.cpp.o.d"
  "/root/repo/src/graph/biconnectivity.cpp" "src/CMakeFiles/emcgm.dir/graph/biconnectivity.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/biconnectivity.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/emcgm.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/ear_decomposition.cpp" "src/CMakeFiles/emcgm.dir/graph/ear_decomposition.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/ear_decomposition.cpp.o.d"
  "/root/repo/src/graph/euler_tour.cpp" "src/CMakeFiles/emcgm.dir/graph/euler_tour.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/euler_tour.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/emcgm.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/lca.cpp" "src/CMakeFiles/emcgm.dir/graph/lca.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/lca.cpp.o.d"
  "/root/repo/src/graph/list_ranking.cpp" "src/CMakeFiles/emcgm.dir/graph/list_ranking.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/list_ranking.cpp.o.d"
  "/root/repo/src/graph/tree_contraction.cpp" "src/CMakeFiles/emcgm.dir/graph/tree_contraction.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/graph/tree_contraction.cpp.o.d"
  "/root/repo/src/pdm/backend.cpp" "src/CMakeFiles/emcgm.dir/pdm/backend.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/pdm/backend.cpp.o.d"
  "/root/repo/src/pdm/cost_model.cpp" "src/CMakeFiles/emcgm.dir/pdm/cost_model.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/pdm/cost_model.cpp.o.d"
  "/root/repo/src/pdm/disk_array.cpp" "src/CMakeFiles/emcgm.dir/pdm/disk_array.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/pdm/disk_array.cpp.o.d"
  "/root/repo/src/pdm/striping.cpp" "src/CMakeFiles/emcgm.dir/pdm/striping.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/pdm/striping.cpp.o.d"
  "/root/repo/src/routing/balanced_routing.cpp" "src/CMakeFiles/emcgm.dir/routing/balanced_routing.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/routing/balanced_routing.cpp.o.d"
  "/root/repo/src/util/archive.cpp" "src/CMakeFiles/emcgm.dir/util/archive.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/util/archive.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/emcgm.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/emcgm.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
