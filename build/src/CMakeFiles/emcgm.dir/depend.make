# Empty dependencies file for emcgm.
# This may be replaced when dependencies are built.
