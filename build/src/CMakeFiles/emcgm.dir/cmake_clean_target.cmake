file(REMOVE_RECURSE
  "libemcgm.a"
)
