// Quickstart: sort data larger than any single virtual processor's memory
// on a simulated parallel-disk machine, and inspect what the simulation
// did — parallel I/O operations, communication rounds, disk utilization.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "algo/sort.h"
#include "cgm/machine.h"
#include "pdm/cost_model.h"
#include "util/rng.h"

int main() {
  using namespace emcgm;

  // A machine: v virtual processors simulated on p real processors, each
  // real processor owning D disks with B-byte blocks.
  cgm::MachineConfig cfg;
  cfg.v = 16;                    // CGM virtual processors
  cfg.p = 2;                     // real processors (Algorithm 3)
  cfg.disk.num_disks = 4;        // D disks each
  cfg.disk.block_bytes = 8192;   // B
  cfg.balanced_routing = true;   // Algorithm 1: two balanced rounds per
                                 // h-relation, bounding message slots
  cgm::Machine machine(cgm::EngineKind::kEm, cfg);

  // One million keys.
  const std::size_t n = 1u << 20;
  auto keys = random_keys(2026, n);

  auto sorted = algo::sort_keys(machine, keys);
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    std::fprintf(stderr, "sort failed!\n");
    return 1;
  }

  const auto& res = machine.total();
  const double stream =
      static_cast<double>(n) * sizeof(std::uint64_t) /
      (cfg.disk.block_bytes * cfg.disk.num_disks * cfg.p);
  pdm::DiskCostModel cost;

  std::printf("sorted %zu keys on a %u-virtual-processor EM-CGM machine\n",
              n, cfg.v);
  std::printf("  compound supersteps (lambda) : %llu\n",
              static_cast<unsigned long long>(res.app_rounds));
  std::printf("  communication supersteps     : %llu (2x lambda-1: balanced"
              " routing)\n",
              static_cast<unsigned long long>(res.comm_steps));
  std::printf("  parallel I/O operations      : %llu\n",
              static_cast<unsigned long long>(res.io.total_ops()));
  std::printf("  ops / streaming bound N/(pDB): %.2f  (constant in N — the"
              " paper's point)\n",
              res.io.total_ops() / stream);
  std::printf("  disk parallel efficiency     : %.3f\n",
              res.io.parallel_efficiency(cfg.disk.num_disks));
  std::printf("  network bytes between real procs: %llu\n",
              static_cast<unsigned long long>(res.comm.total_bytes()));
  std::printf("  modeled I/O time (1990s disks): %.2f s\n",
              cost.io_seconds(res.io, cfg.disk.block_bytes));
  std::printf("  wall time                     : %.3f s\n", res.wall_s);
  return 0;
}
