// Graph-analysis scenario: a road-network-style workload on the EM-CGM
// machine — connected components + spanning forest of a sparse graph, then
// tree analytics (Euler tour: depths, subtree sizes) and batched LCA
// routing queries on the largest component's spanning tree.
#include <algorithm>
#include <cstdio>
#include <map>

#include "cgm/machine.h"
#include "graph/connectivity.h"
#include "graph/euler_tour.h"
#include "graph/graph.h"
#include "graph/lca.h"
#include "util/rng.h"

int main() {
  using namespace emcgm;

  cgm::MachineConfig cfg;
  cfg.v = 8;
  cfg.disk.num_disks = 4;
  cfg.disk.block_bytes = 4096;
  cgm::Machine machine(cgm::EngineKind::kEm, cfg);

  const std::uint64_t n = 40000;
  auto edges = graph::gnm_graph(7, n, n + n / 2);
  std::printf("road network: %llu junctions, %zu segments\n",
              static_cast<unsigned long long>(n), edges.size());

  // Components + spanning forest.
  auto cc = graph::connected_components(machine, edges, n);
  std::map<std::uint64_t, std::uint64_t> sizes;
  for (const auto& c : cc.components) sizes[c.comp]++;
  auto largest = std::max_element(
      sizes.begin(), sizes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("  %zu connected components; largest has %llu junctions;"
              " spanning forest: %zu segments\n",
              sizes.size(),
              static_cast<unsigned long long>(largest->second),
              cc.forest.size());

  // Re-index the largest component's spanning tree to dense ids rooted at
  // its minimum junction.
  std::vector<std::uint64_t> dense(n, graph::kNil);
  std::uint64_t next_id = 0;
  for (const auto& c : cc.components) {
    if (c.comp == largest->first) dense[c.id] = next_id++;
  }
  std::vector<graph::Edge> tree;
  for (const auto& e : cc.forest) {
    if (dense[e.u] != graph::kNil && dense[e.v] != graph::kNil) {
      tree.push_back(graph::Edge{dense[e.u], dense[e.v]});
    }
  }
  const std::uint64_t tn = next_id;

  // Tree analytics.
  auto tour = graph::euler_tour_full(machine, tree, tn);
  auto verts = machine.gather(tour.verts);
  std::uint64_t max_depth = 0, total_depth = 0;
  for (const auto& vr : verts) {
    max_depth = std::max(max_depth, vr.depth);
    total_depth += vr.depth;
  }
  std::printf("  spanning-tree analytics: eccentricity from hub = %llu,"
              " mean depth %.1f\n",
              static_cast<unsigned long long>(max_depth),
              static_cast<double>(total_depth) / tn);

  // Routing queries: meeting point (LCA) of random junction pairs.
  std::vector<graph::LcaQuery> qs;
  Rng rng(9);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    qs.push_back(
        graph::LcaQuery{rng.next_below(tn), rng.next_below(tn), i});
  }
  auto meet = graph::lca_batch(machine, tour, qs);
  std::uint64_t at_hub = 0;
  for (const auto& r : meet) {
    if (r.lca == 0) ++at_hub;
  }
  std::printf("  %zu routing queries answered; %llu meet at the hub\n",
              qs.size(), static_cast<unsigned long long>(at_hub));

  const auto& res = machine.total();
  std::printf("\npipeline totals: %llu compound supersteps, %llu parallel"
              " I/Os, %.3f s wall\n",
              static_cast<unsigned long long>(res.app_rounds),
              static_cast<unsigned long long>(res.io.total_ops()),
              res.wall_s);
  return 0;
}
