// The paper's headline in one program: sort the same data on the same
// simulated disks with (a) classical external mergesort — whose pass count
// log_{M/(DB)}(N/M) grows as the data outgrows the fixed machine memory —
// and (b) the deterministic CGM simulation, whose parallel I/O count stays
// a constant multiple of the streaming bound N/(DB) (Theorem 2). On a
// fixed machine, growing N crosses over: the mergesort logarithm keeps
// climbing while the simulation's constant does not.
#include <algorithm>
#include <cstdio>

#include "algo/sort.h"
#include "baseline/em_mergesort.h"
#include "cgm/machine.h"
#include "util/rng.h"

int main() {
  using namespace emcgm;

  const std::uint32_t D = 4;
  const std::size_t B = 4096;
  const std::size_t mem = 3 * D * B;  // a scarce fixed memory: fan-in 2

  std::printf(
      "same disks (D=%u, B=%zu), fixed machine memory M=%zu bytes,\n"
      "growing data: parallel I/O ops per streaming pass N/(DB)\n\n",
      D, B, mem);
  std::printf("%10s | %8s | %22s | %22s\n", "N (items)", "passes",
              "mergesort ops (ratio)", "EM-CGM sim ops (ratio)");

  for (std::size_t n : {1u << 16, 1u << 18, 1u << 20, 1u << 22, 1u << 23, 1u << 24}) {
    auto keys = random_keys(11, n);
    const double stream =
        static_cast<double>(n) * sizeof(std::uint64_t) / (D * B);

    pdm::DiskArray disks(std::make_unique<pdm::MemoryBackend>(
        pdm::DiskGeometry{D, B}));
    baseline::SortStats stats;
    auto a = baseline::em_mergesort(disks, keys, mem, &stats);

    // The simulation scales v with N so each virtual processor's context
    // is a few memory-loads — the coarse-grained regime of §1.4.
    cgm::MachineConfig cfg;
    cfg.v = 32;
    cfg.disk.num_disks = D;
    cfg.disk.block_bytes = B;
    cgm::Machine machine(cgm::EngineKind::kEm, cfg);
    auto b = algo::sort_keys(machine, keys);
    if (a != b) {
      std::fprintf(stderr, "results disagree at n=%zu!\n", n);
      return 1;
    }
    const auto ops_merge = stats.io.total_ops();
    const auto ops_cgm = machine.total().io.total_ops();
    std::printf("%10zu | %8llu | %12llu (%6.2f) | %12llu (%6.2f)%s\n", n,
                static_cast<unsigned long long>(stats.merge_passes),
                static_cast<unsigned long long>(ops_merge),
                ops_merge / stream,
                static_cast<unsigned long long>(ops_cgm), ops_cgm / stream,
                ops_cgm < ops_merge ? "   <-- simulation wins" : "");
  }

  std::printf(
      "\nThe mergesort ratio is ~2.5 x (passes+2) and keeps growing with"
      " N;\nthe simulation's ratio is a constant (~2 sweeps per compound"
      " superstep,\nlambda = 6 for the sample sort) — the paper's"
      " log-factor elimination.\n");
  return 0;
}
