// GIS scenario (the paper's §1.1 motivation: geographic information
// systems over terabyte data sets): a land-survey pipeline over one
// synthetic map on a single EM-CGM machine —
//   1. building footprints      -> total built-up area (union of rects),
//   2. radio towers             -> nearest-neighbor spacing audit,
//   3. elevation samples        -> Pareto sites (3D maxima: east, north,
//                                  elevation),
//   4. parcel valuation         -> for each parcel, the total value of
//                                  parcels strictly south-west of it
//                                  (weighted dominance counting).
// All four stages share the machine, so the accumulated statistics are the
// whole pipeline's I/O profile.
#include <cmath>
#include <cstdio>

#include "cgm/machine.h"
#include "geom/dominance.h"
#include "geom/maxima3d.h"
#include "geom/nearest_neighbor.h"
#include "geom/point.h"
#include "geom/rect_union.h"

int main() {
  using namespace emcgm;

  cgm::MachineConfig cfg;
  cfg.v = 8;
  cfg.disk.num_disks = 4;
  cfg.disk.block_bytes = 4096;
  cgm::Machine machine(cgm::EngineKind::kEm, cfg);

  const std::size_t n = 60000;
  std::printf("GIS pipeline over a synthetic map (%zu objects/stage)\n\n", n);

  // 1. Built-up area.
  auto buildings = geom::random_rects(1, n, 0.01);
  const double area = geom::rect_union_area(machine, buildings);
  std::printf("1. union of %zu building footprints: %.6f km^2 of unit map\n",
              n, area);

  // 2. Tower spacing.
  auto towers = geom::random_points2(2, n / 10);
  auto nn = machine.gather(
      geom::all_nearest_neighbors(machine, machine.scatter<geom::Point2>(towers)));
  double min_d2 = 1e300;
  for (const auto& r : nn) min_d2 = std::min(min_d2, r.d2);
  std::printf("2. nearest-neighbor audit of %zu towers: closest pair at"
              " %.5f map units\n",
              towers.size(), std::sqrt(min_d2));

  // 3. Pareto sites.
  auto sites = geom::random_points3(3, n);
  auto pareto = machine.gather(
      geom::maxima3d(machine, machine.scatter<geom::Point3>(sites)));
  std::printf("3. 3D maxima over %zu survey sites: %zu Pareto-optimal"
              " (east/north/elevation)\n",
              n, pareto.size());

  // 4. South-west dominated value.
  auto parcels = geom::random_wpoints2(4, n, 1000);
  auto dom = machine.gather(
      geom::dominance_counts(machine, machine.scatter<geom::WPoint2>(parcels)));
  std::uint64_t max_dom = 0;
  for (const auto& d : dom) max_dom = std::max(max_dom, d.count);
  std::printf("4. dominance valuation of %zu parcels: richest south-west"
              " cone holds weight %llu\n",
              n, static_cast<unsigned long long>(max_dom));

  const auto& res = machine.total();
  std::printf("\npipeline totals: %llu compound supersteps, %llu parallel"
              " I/Os, disk efficiency %.3f, %.3f s wall\n",
              static_cast<unsigned long long>(res.app_rounds),
              static_cast<unsigned long long>(res.io.total_ops()),
              res.io.parallel_efficiency(cfg.disk.num_disks), res.wall_s);
  return 0;
}
